"""Tests for the durable storage tier (repro.storage.persist).

Covers the block spill/fault protocol, the byte-budgeted LRU buffer (hits,
faults, evictions, write-back), the peek bypass, a randomized spill/evict
audit proving buffered reads are bit-identical to the in-memory store,
checkpoint/restore of the full partition state (epochs, trees, statistics,
delta chains, RNG states, the adaptation window, plan-cache keys), and
crash consistency when a checkpoint dies between spilling blocks and
committing the catalog.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.api.session import Session
from repro.common.errors import PlanningError, StorageError
from repro.common.predicates import between, ge
from repro.common.query import join_query, scan_query
from repro.common.rng import make_rng
from repro.common.sanitize import set_sanitize
from repro.core import AdaptDBConfig
from repro.storage.dfs import DistributedFileSystem
from repro.storage.persist import PersistenceManager
from repro.workloads.generators import switching_workload


# --------------------------------------------------------------------- #
# Helpers
# --------------------------------------------------------------------- #
def mmap_config(tmp_path, name="root", buffer_bytes=None, **overrides):
    defaults = dict(
        rows_per_block=512,
        window_size=10,
        seed=3,
        persistence="mmap",
        storage_root=str(tmp_path / name),
        buffer_bytes=buffer_bytes,
    )
    defaults.update(overrides)
    return AdaptDBConfig(**defaults)


def memory_config(**overrides):
    # persistence is pinned so the CI job's REPRO_PERSISTENCE=mmap override
    # cannot turn the in-memory reference sessions into mmap ones.
    defaults = dict(
        rows_per_block=512, window_size=10, seed=3, persistence="memory"
    )
    defaults.update(overrides)
    return AdaptDBConfig(**defaults)


def load_session(config, tpch_tables, names=("lineitem", "orders", "part")):
    session = Session(config=config)
    for name in names:
        session.load_table(tpch_tables[name])
    return session


def adaptive_workload(queries_per_template=3, seed=1):
    """A switching workload that exercises smooth + Amoeba adaptation."""
    return switching_workload(
        ["q12", "q14", "q19", "q6"], queries_per_template, make_rng(seed)
    )


def table_epochs(session):
    return {table.name: table.epoch for table in session.catalog.tables()}


def all_block_columns(session):
    """{table: {block_id: {column: array}}} for every stored block."""
    state = {}
    for table in session.catalog.tables():
        blocks = {}
        for block_id in table.block_ids():
            block = session.dfs.peek_block(block_id)
            blocks[block_id] = {
                name: np.asarray(array).copy()
                for name, array in block.columns.items()
            }
        state[table.name] = blocks
    return state


def assert_same_block_state(actual, expected):
    assert actual.keys() == expected.keys()
    for table_name, expected_blocks in expected.items():
        actual_blocks = actual[table_name]
        assert actual_blocks.keys() == expected_blocks.keys(), table_name
        for block_id, expected_columns in expected_blocks.items():
            actual_columns = actual_blocks[block_id]
            assert actual_columns.keys() == expected_columns.keys()
            for name, expected_array in expected_columns.items():
                np.testing.assert_array_equal(
                    actual_columns[name], expected_array,
                    err_msg=f"{table_name} block {block_id} column {name}",
                )


# --------------------------------------------------------------------- #
# Block spill/fault protocol
# --------------------------------------------------------------------- #
class TestBlockProtocol:
    def make_dfs_with_store(self, tmp_path):
        from repro.cluster.cluster import Cluster

        manager = PersistenceManager(tmp_path / "store", num_machines=2)
        dfs = DistributedFileSystem(cluster=Cluster(num_machines=2), rng=make_rng(1))
        manager.attach(dfs)
        return dfs, manager

    def test_spill_unload_fault_round_trip(self, tmp_path):
        dfs, manager = self.make_dfs_with_store(tmp_path)
        columns = {"key": np.arange(100, dtype=np.int64)}
        block = dfs.create_block("t", columns)  # repro: allow[epoch-discipline]
        assert block.dirty and block.is_resident
        manager.store.spill(block)
        assert not block.dirty
        block.unload()
        assert not block.is_resident
        np.testing.assert_array_equal(block.columns["key"], columns["key"])
        assert block.is_resident

    def test_unload_refuses_dirty_blocks(self, tmp_path):
        dfs, manager = self.make_dfs_with_store(tmp_path)
        block = dfs.create_block("t", {"key": np.arange(10, dtype=np.int64)})  # repro: allow[epoch-discipline]
        with pytest.raises(StorageError, match="unspilled changes"):
            block.unload()
        manager.store.spill(block)
        block.append_rows({"key": np.arange(5, dtype=np.int64)})  # repro: allow[epoch-discipline]
        assert block.dirty
        with pytest.raises(StorageError, match="unspilled changes"):
            block.unload()

    def test_append_to_unloaded_block_defers_the_fault(self, tmp_path):
        dfs, manager = self.make_dfs_with_store(tmp_path)
        block = dfs.create_block("t", {"key": np.arange(10, dtype=np.int64)})  # repro: allow[epoch-discipline]
        manager.buffer.bind(block, manager.store.spill(block))
        block.unload()
        faults_before = manager.buffer.faults
        block.append_rows({"key": np.array([100, 101], dtype=np.int64)})  # repro: allow[epoch-discipline]
        # Metadata updated incrementally, no disk read yet.
        assert block.num_rows == 12
        assert not block.is_resident
        assert manager.buffer.faults == faults_before
        # Consuming the rows faults the on-disk prefix in, in row order.
        np.testing.assert_array_equal(
            block.columns["key"],
            np.concatenate([np.arange(10), [100, 101]]).astype(np.int64),
        )
        assert manager.buffer.faults == faults_before + 1

    def test_metadata_survives_unload(self, tmp_path):
        dfs, manager = self.make_dfs_with_store(tmp_path)
        block = dfs.create_block("t", {"key": np.arange(50, dtype=np.int64)})  # repro: allow[epoch-discipline]
        ranges, size, rows = dict(block.ranges), block.size_bytes, block.num_rows
        manager.store.spill(block)
        block.unload()
        assert block.ranges == ranges
        assert block.size_bytes == size
        assert block.num_rows == rows

    def test_versioned_spills_keep_only_referenced_files(self, tmp_path):
        dfs, manager = self.make_dfs_with_store(tmp_path)
        block = dfs.create_block("t", {"key": np.arange(10, dtype=np.int64)})  # repro: allow[epoch-discipline]
        manager.store.spill(block)
        block.replace_columns({"key": np.arange(20, dtype=np.int64)})  # repro: allow[epoch-discipline]
        manager.store.spill(block)
        assert manager.store.live_version(block.block_id) == 2
        manager.store.mark_durable()
        removed = manager.store.gc()
        assert removed == 1  # v1 superseded
        block.unload()
        np.testing.assert_array_equal(block.columns["key"], np.arange(20))


# --------------------------------------------------------------------- #
# The LRU buffer
# --------------------------------------------------------------------- #
class TestBlockBuffer:
    def make_buffered_dfs(self, tmp_path, budget_bytes):
        from repro.cluster.cluster import Cluster

        manager = PersistenceManager(tmp_path / "buf", 2, buffer_bytes=budget_bytes)
        dfs = DistributedFileSystem(cluster=Cluster(num_machines=2), rng=make_rng(1))
        manager.attach(dfs)
        return dfs, manager.buffer

    def test_budget_evicts_least_recently_used_first(self, tmp_path):
        block_bytes = 100 * 8
        dfs, buffer = self.make_buffered_dfs(tmp_path, 3 * block_bytes)
        blocks = [
            dfs.create_block("t", {"key": np.arange(100, dtype=np.int64)})  # repro: allow[epoch-discipline]
            for _ in range(3)
        ]
        assert buffer.evictions == 0
        dfs.get_block(blocks[0].block_id)  # refresh 0: LRU order is 1, 2, 0
        dfs.create_block("t", {"key": np.arange(100, dtype=np.int64)})  # repro: allow[epoch-discipline]
        assert buffer.evictions == 1
        assert not blocks[1].is_resident
        assert blocks[0].is_resident and blocks[2].is_resident

    def test_eviction_spills_dirty_blocks_before_dropping(self, tmp_path):
        block_bytes = 100 * 8
        dfs, buffer = self.make_buffered_dfs(tmp_path, 2 * block_bytes)
        first = dfs.create_block("t", {"key": np.arange(100, dtype=np.int64)})  # repro: allow[epoch-discipline]
        assert first.dirty
        for _ in range(2):
            dfs.create_block("t", {"key": np.arange(100, dtype=np.int64)})  # repro: allow[epoch-discipline]
        assert not first.is_resident
        # The write-back preserved the data; faulting it back is bit-exact.
        np.testing.assert_array_equal(first.columns["key"], np.arange(100))

    def test_fault_counts_and_readmits(self, tmp_path):
        block_bytes = 100 * 8
        dfs, buffer = self.make_buffered_dfs(tmp_path, 2 * block_bytes)
        blocks = [
            dfs.create_block("t", {"key": np.arange(100, dtype=np.int64)})  # repro: allow[epoch-discipline]
            for _ in range(3)
        ]
        assert not blocks[0].is_resident
        before = buffer.faults
        _ = dfs.get_block(blocks[0].block_id).columns
        assert buffer.faults == before + 1
        assert blocks[0].is_resident

    def test_hit_counted_only_for_resident_blocks(self, tmp_path):
        dfs, buffer = self.make_buffered_dfs(tmp_path, None)
        block = dfs.create_block("t", {"key": np.arange(10, dtype=np.int64)})  # repro: allow[epoch-discipline]
        dfs.get_block(block.block_id)
        assert buffer.hits == 1
        assert dfs.read_stats.buffer_hits == 1

    def test_delete_discards_without_eviction_accounting(self, tmp_path):
        dfs, buffer = self.make_buffered_dfs(tmp_path, None)
        block = dfs.create_block("t", {"key": np.arange(10, dtype=np.int64)})  # repro: allow[epoch-discipline]
        resident_before = buffer.resident_bytes
        assert resident_before > 0
        dfs.delete_block(block.block_id)  # repro: allow[epoch-discipline]
        assert buffer.evictions == 0
        assert buffer.resident_bytes == 0

    def test_drop_resident_and_set_budget(self, tmp_path):
        dfs, buffer = self.make_buffered_dfs(tmp_path, None)
        blocks = [
            dfs.create_block("t", {"key": np.arange(100, dtype=np.int64)})  # repro: allow[epoch-discipline]
            for _ in range(4)
        ]
        dropped = buffer.drop_resident()
        assert dropped == 4
        assert buffer.resident_bytes == 0
        assert all(not block.is_resident for block in blocks)
        for block in blocks:
            _ = dfs.get_block(block.block_id).columns
        buffer.set_budget(100 * 8)
        assert buffer.resident_bytes <= 100 * 8


# --------------------------------------------------------------------- #
# peek_block bypass
# --------------------------------------------------------------------- #
class TestPeekBypass:
    def test_peek_counts_nothing_and_keeps_blocks_cold(self, tmp_path, tpch_tables):
        session = load_session(mmap_config(tmp_path), tpch_tables, ("part",))
        session.checkpoint()
        buffer = session.persist.buffer
        buffer.drop_resident()
        buffer.reset_counters()
        session.dfs.reset_read_stats()
        table = session.table("part")
        for block_id in table.block_ids():
            block = session.dfs.peek_block(block_id)
            _ = block.num_rows, block.ranges, block.size_bytes
            assert not block.is_resident, "peeks must not fault columns in"
        stats = session.dfs.read_stats
        assert stats.total_reads == 0
        assert buffer.hits == buffer.faults == buffer.evictions == 0
        assert stats.buffer_hits == stats.buffer_faults == 0
        session.close()

    def test_peek_does_not_refresh_recency(self, tmp_path):
        from repro.cluster.cluster import Cluster

        block_bytes = 100 * 8
        manager = PersistenceManager(tmp_path / "peek", 2, buffer_bytes=3 * block_bytes)
        dfs = DistributedFileSystem(cluster=Cluster(num_machines=2), rng=make_rng(1))
        manager.attach(dfs)
        blocks = [
            dfs.create_block("t", {"key": np.arange(100, dtype=np.int64)})  # repro: allow[epoch-discipline]
            for _ in range(3)
        ]
        dfs.peek_block(blocks[0].block_id)  # must NOT move block 0 to MRU
        dfs.create_block("t", {"key": np.arange(100, dtype=np.int64)})  # repro: allow[epoch-discipline]
        assert not blocks[0].is_resident, "peek kept the LRU victim the LRU victim"


# --------------------------------------------------------------------- #
# Randomized spill/evict audit: buffered reads == in-memory store
# --------------------------------------------------------------------- #
class TestBufferedReadsBitIdentical:
    def test_randomized_budget_churn_preserves_all_bytes(self, tmp_path, tpch_tables):
        queries = adaptive_workload(queries_per_template=2)
        reference = load_session(memory_config(), tpch_tables)
        ref_fingerprints = [r.fingerprint() for r in reference.run_workload(queries)]
        expected_state = all_block_columns(reference)
        reference.close()

        session = load_session(mmap_config(tmp_path), tpch_tables)
        buffer = session.persist.buffer
        chaos = make_rng(99)
        fingerprints = []
        for query in queries:
            # Random bounded budgets and cold resets between queries: blocks
            # spill, evict and fault continuously while answers must not move.
            roll = chaos.integers(0, 4)
            if roll == 0:
                buffer.set_budget(int(chaos.integers(50_000, 400_000)))
            elif roll == 1:
                buffer.drop_resident()
            elif roll == 2:
                buffer.set_budget(None)
            fingerprints.append(session.run(query).fingerprint())
        assert fingerprints == ref_fingerprints
        assert buffer.evictions > 0, "the audit must actually exercise eviction"
        assert buffer.faults > 0, "the audit must actually exercise faulting"
        # Every surviving block holds exactly the bytes the in-memory store has.
        assert_same_block_state(all_block_columns(session), expected_state)
        session.close()


# --------------------------------------------------------------------- #
# Checkpoint / restore
# --------------------------------------------------------------------- #
class TestCheckpointRestore:
    def test_restores_epochs_trees_statistics_and_fingerprints(
        self, tmp_path, tpch_tables
    ):
        queries = adaptive_workload()
        session = load_session(mmap_config(tmp_path), tpch_tables)
        session.run_workload(queries)
        repeated = [session.run(q, adapt=False).fingerprint() for q in queries[:4]]
        epochs = table_epochs(session)
        described = session.describe()
        block_state = all_block_columns(session)
        totals = {t.name: t.total_rows for t in session.catalog.tables()}
        session.checkpoint()
        session.close()

        reopened = Session.open(tmp_path / "root")
        assert table_epochs(reopened) == epochs
        assert reopened.describe() == described
        assert {t.name: t.total_rows for t in reopened.catalog.tables()} == totals
        assert_same_block_state(all_block_columns(reopened), block_state)
        assert [
            reopened.run(q, adapt=False).fingerprint() for q in queries[:4]
        ] == repeated
        reopened.close()

    def test_restart_hits_plan_cache_on_repeated_templates(
        self, tmp_path, tpch_tables
    ):
        query = join_query(
            "lineitem", "orders", "l_orderkey", "o_orderkey",
            predicates={"lineitem": [between("l_shipdate", 0.0, 400.0)]},
        )
        session = load_session(mmap_config(tmp_path), tpch_tables)
        expected = session.run(query, adapt=False).fingerprint()
        session.checkpoint()
        session.close()

        reopened = Session.open(tmp_path / "root")
        cold = reopened.run(query, adapt=False)
        assert not cold.plan_cache_hit, "the plan cache starts empty after restart"
        assert cold.fingerprint() == expected
        warm = reopened.run(query, adapt=False)
        assert warm.plan_cache_hit, (
            "restored epochs must key the plan cache exactly as before"
        )
        assert warm.fingerprint() == expected
        reopened.close()

    def test_adaptation_continues_bit_identically_across_restart(
        self, tmp_path, tpch_tables
    ):
        queries = adaptive_workload(queries_per_template=3)
        w1, w2 = queries[:6], queries[6:]
        reference = load_session(memory_config(), tpch_tables)
        expected = [r.fingerprint() for r in reference.run_workload(w1 + w2)]
        reference.close()

        session = load_session(mmap_config(tmp_path), tpch_tables)
        first = [r.fingerprint() for r in session.run_workload(w1)]
        session.checkpoint()
        session.close()

        reopened = Session.open(tmp_path / "root")
        second = [r.fingerprint() for r in reopened.run_workload(w2)]
        assert first + second == expected, (
            "restore must reinstate RNG states, the window and delta chains "
            "so adaptation resumes exactly where the checkpoint left it"
        )
        reopened.close()

    def test_delta_chains_span_the_restart(self, tmp_path, tpch_tables):
        session = load_session(mmap_config(tmp_path), tpch_tables)
        session.run_workload(adaptive_workload(queries_per_template=2))
        lineitem = session.table("lineitem")
        epoch = lineitem.epoch
        assert epoch > 0, "the workload must have adapted lineitem"
        expected = {
            start: lineitem.delta_between(start, epoch)
            for start in range(max(0, epoch - 3), epoch + 1)
        }
        session.checkpoint()
        session.close()

        reopened = Session.open(tmp_path / "root")
        restored = reopened.table("lineitem")
        for start, delta in expected.items():
            assert restored.delta_between(start, epoch) == delta
        reopened.close()

    def test_open_requires_a_catalog_and_checkpoint(self, tmp_path):
        with pytest.raises(StorageError, match="no catalog"):
            Session.open(tmp_path / "nowhere")

    def test_fresh_session_refuses_a_checkpointed_root(self, tmp_path, tpch_tables):
        session = load_session(mmap_config(tmp_path), tpch_tables, ("part",))
        session.checkpoint()
        session.close()
        with pytest.raises(StorageError, match="already holds a checkpointed"):
            Session(config=mmap_config(tmp_path))

    def test_checkpoint_requires_mmap_persistence(self, tpch_tables):
        session = load_session(memory_config(), tpch_tables, ("part",))
        with pytest.raises(StorageError, match="persistence='mmap'"):
            session.checkpoint()
        session.close()

    def test_sanitizer_verifies_descriptors_across_restart(
        self, tmp_path, tpch_tables
    ):
        set_sanitize(True)
        try:
            session = load_session(mmap_config(tmp_path), tpch_tables)
            session.run_workload(adaptive_workload(queries_per_template=2)[:4])
            session.checkpoint()
            session.close()
            reopened = Session.open(tmp_path / "root")
            # Post-restore bumps verify against the restored snapshot baseline.
            reopened.run_workload(adaptive_workload(queries_per_template=2)[4:])
            reopened.close()
        finally:
            set_sanitize(None)


# --------------------------------------------------------------------- #
# Crash consistency
# --------------------------------------------------------------------- #
class TestCrashRecovery:
    def on_disk_versions(self, root):
        found = set()
        for machine_dir in sorted(root.glob("machine-*")):
            for entry in sorted(os.listdir(machine_dir)):
                found.add(entry)
        return found

    def test_crash_between_spill_and_commit_rolls_back(
        self, tmp_path, tpch_tables, monkeypatch
    ):
        queries = adaptive_workload(queries_per_template=2)
        w1, w2 = queries[:4], queries[4:]
        root = tmp_path / "root"
        session = load_session(mmap_config(tmp_path), tpch_tables)
        session.run_workload(w1)
        session.checkpoint()
        epochs = table_epochs(session)
        block_state = all_block_columns(session)

        # More adaptation beyond the checkpoint, then a checkpoint that dies
        # after phase 1 (spill files written) but before the catalog commit.
        w2_fingerprints = [r.fingerprint() for r in session.run_workload(w2)]
        def die(manager, session_arg, tables):
            raise RuntimeError("simulated crash before the catalog commit")

        monkeypatch.setattr(PersistenceManager, "_commit_checkpoint", die)
        with pytest.raises(RuntimeError, match="simulated crash"):
            session.checkpoint()
        monkeypatch.undo()
        stranded = self.on_disk_versions(root)
        session.close()

        reopened = Session.open(root)
        # The previous checkpoint's state is back, bit for bit.
        assert table_epochs(reopened) == epochs
        assert_same_block_state(all_block_columns(reopened), block_state)
        # Stranded post-checkpoint spill files were garbage-collected: only
        # catalog-referenced versions remain on disk.
        remaining = self.on_disk_versions(root)
        durable = reopened.persist.catalog.durable_versions()
        for entry in remaining:
            block_id, version = entry.removeprefix("block-").split("-v")
            assert durable.get(int(block_id)) == int(version), entry
        assert remaining < stranded, "recovery must remove stranded versions"
        # Replaying the lost work reproduces the exact original outcomes.
        assert [
            r.fingerprint() for r in reopened.run_workload(w2)
        ] == w2_fingerprints
        reopened.close()

    def test_rollback_survives_block_deletions_after_checkpoint(
        self, tmp_path, tpch_tables
    ):
        """Deleting a block between checkpoints must not destroy the durable
        copy a crash rollback still needs."""
        root = tmp_path / "root"
        session = load_session(mmap_config(tmp_path), tpch_tables, ("part",))
        session.checkpoint()
        block_state = all_block_columns(session)
        victim = session.table("part").block_ids()[0]
        # Simulate post-checkpoint adaptation dropping a block entirely.
        session.dfs.delete_block(victim)  # repro: allow[epoch-discipline]
        session.close()

        reopened = Session.open(root)
        assert_same_block_state(all_block_columns(reopened), block_state)
        reopened.close()


# --------------------------------------------------------------------- #
# Config knobs
# --------------------------------------------------------------------- #
class TestPersistenceConfig:
    def test_memory_sessions_reject_storage_knobs(self):
        with pytest.raises(PlanningError, match="storage_root"):
            AdaptDBConfig(persistence="memory", storage_root="/tmp/x")
        with pytest.raises(PlanningError, match="buffer_bytes"):
            AdaptDBConfig(persistence="memory", buffer_bytes=1024)
        with pytest.raises(PlanningError, match="persistence"):
            AdaptDBConfig(persistence="disk")

    def test_env_defaults_resolve_only_unset_fields(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_PERSISTENCE", "mmap")
        monkeypatch.setenv("REPRO_BUFFER_BYTES", "123456")
        config = AdaptDBConfig()
        assert config.persistence == "mmap"
        assert config.buffer_bytes == 123456
        explicit = AdaptDBConfig(persistence="memory")
        assert explicit.persistence == "memory"
        assert explicit.buffer_bytes is None

    def test_env_storage_root_hosts_session_dirs(
        self, monkeypatch, tmp_path, tpch_tables
    ):
        monkeypatch.setenv("REPRO_PERSISTENCE", "mmap")
        monkeypatch.setenv("REPRO_STORAGE_ROOT", str(tmp_path / "parent"))
        session = load_session(AdaptDBConfig(rows_per_block=512, seed=3),
                               tpch_tables, ("part",))
        try:
            assert session.persist is not None
            root = session.storage_root
            assert root is not None
            assert str(tmp_path / "parent") in str(root)
            # A generated root never leaks into the (shareable) config: a
            # second session built from the same config gets its own root.
            assert session.config.storage_root is None
        finally:
            session.close()

    def test_scan_results_match_memory_mode(self, tmp_path, tpch_tables):
        query = scan_query("part", [ge("p_size", 10.0)])
        memory = load_session(memory_config(), tpch_tables, ("part",))
        expected = memory.run(query).fingerprint()
        memory.close()
        session = load_session(
            mmap_config(tmp_path, buffer_bytes=64 * 1024), tpch_tables, ("part",)
        )
        result = session.run(query)
        assert result.fingerprint() == expected
        assert result.buffer_hits + result.buffer_faults > 0
        session.close()
