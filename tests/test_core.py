"""Tests for repro.core: config, planner classification, optimizer, executor."""

from __future__ import annotations

import pytest

from repro.common.errors import PlanningError
from repro.common.predicates import between, eq
from repro.common.query import join_query, scan_query
from repro.core import AdaptDB, AdaptDBConfig
from repro.core.planner import JoinCase, JoinMethod, classify_join
from repro.workloads.tpch_queries import tpch_query


class TestConfigValidation:
    def test_defaults_are_valid(self):
        config = AdaptDBConfig()
        assert config.window_size == 10
        assert config.join_level_fraction == 0.5

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rows_per_block": 0},
            {"buffer_blocks": 0},
            {"window_size": 0},
            {"join_level_fraction": 1.5},
            {"force_join_method": "magic"},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(PlanningError):
            AdaptDBConfig(**kwargs)


class TestPlannerClassification:
    def make_db(self, tpch_tables, **config_kwargs):
        config = AdaptDBConfig(rows_per_block=512, seed=1, **config_kwargs)
        db = AdaptDB(config)
        for name in ("lineitem", "orders"):
            db.load_table(tpch_tables[name])
        return db

    def test_freshly_loaded_tables_are_not_partitioned_for_the_join(self, tpch_tables):
        db = self.make_db(tpch_tables)
        clause = join_query("lineitem", "orders", "l_orderkey", "o_orderkey").joins[0]
        classification = classify_join(db.catalog, clause)
        assert classification.case is JoinCase.NOT_PARTITIONED

    def test_converged_tables_are_co_partitioned(self, tpch_tables):
        db = self.make_db(tpch_tables)
        query = join_query("lineitem", "orders", "l_orderkey", "o_orderkey")
        for _ in range(14):
            db.run(query)
        classification = classify_join(db.catalog, query.joins[0])
        assert classification.case is JoinCase.CO_PARTITIONED

    def test_mid_migration_is_mixed(self, tpch_tables):
        db = self.make_db(tpch_tables)
        query = join_query("lineitem", "orders", "l_orderkey", "o_orderkey")
        db.run(query)  # first query: trees created, little data migrated
        classification = classify_join(db.catalog, query.joins[0])
        assert classification.case in (JoinCase.MIXED, JoinCase.CO_PARTITIONED)
        assert classification.left_on_join_attribute


class TestOptimizer:
    def test_unknown_table_rejected(self, small_db):
        with pytest.raises(PlanningError):
            small_db.plan(scan_query("missing_table"))

    def test_scan_plan_contains_pruned_blocks(self, small_db):
        lineitem = small_db.table("lineitem")
        predicate = between("l_shipdate", 0, 200)
        plan = small_db.plan(scan_query("lineitem", [predicate]), adapt=False)
        assert plan.scan_tables == ["lineitem"]
        assert set(plan.scan_blocks["lineitem"]).issubset(set(lineitem.non_empty_block_ids()))

    def test_pruning_disabled_reads_every_block(self, tpch_tables):
        config = AdaptDBConfig(rows_per_block=512, enable_pruning=False, seed=1)
        db = AdaptDB(config)
        db.load_table(tpch_tables["lineitem"])
        predicate = between("l_shipdate", 0, 10)
        plan = db.plan(scan_query("lineitem", [predicate]), adapt=False)
        assert len(plan.scan_blocks["lineitem"]) == len(
            db.table("lineitem").non_empty_block_ids()
        )

    def test_join_decision_records_cost_estimates(self, small_db):
        query = join_query("lineitem", "orders", "l_orderkey", "o_orderkey")
        plan = small_db.plan(query, adapt=False)
        decision = plan.join_decisions[0]
        assert decision.estimated_shuffle_cost > 0
        assert decision.estimated_hyper_cost > 0
        assert decision.method in (JoinMethod.HYPER, JoinMethod.SHUFFLE)

    def test_cost_based_choice_picks_cheaper_method(self, small_db):
        query = join_query("lineitem", "orders", "l_orderkey", "o_orderkey")
        plan = small_db.plan(query, adapt=False)
        decision = plan.join_decisions[0]
        if decision.estimated_hyper_cost <= decision.estimated_shuffle_cost:
            assert decision.method is JoinMethod.HYPER
        else:
            assert decision.method is JoinMethod.SHUFFLE

    def test_forced_shuffle(self, tpch_tables):
        config = AdaptDBConfig(rows_per_block=512, force_join_method="shuffle", seed=1)
        db = AdaptDB(config)
        for name in ("lineitem", "orders"):
            db.load_table(tpch_tables[name])
        plan = db.plan(join_query("lineitem", "orders", "l_orderkey", "o_orderkey"), adapt=False)
        assert plan.join_decisions[0].method is JoinMethod.SHUFFLE

    def test_forced_hyper(self, tpch_tables):
        config = AdaptDBConfig(rows_per_block=512, force_join_method="hyper", seed=1)
        db = AdaptDB(config)
        for name in ("lineitem", "orders"):
            db.load_table(tpch_tables[name])
        plan = db.plan(join_query("lineitem", "orders", "l_orderkey", "o_orderkey"), adapt=False)
        assert plan.join_decisions[0].method is JoinMethod.HYPER

    def test_adaptation_disabled_on_request(self, small_db):
        plan = small_db.plan(tpch_query("q12", small_db.rng), adapt=False)
        assert plan.adaptation.blocks_repartitioned == 0
        assert plan.adaptation.trees_created == 0

    def test_build_side_selection_minimizes_cost(self, small_db):
        query = join_query("lineitem", "orders", "l_orderkey", "o_orderkey")
        plan = small_db.plan(query, adapt=False)
        decision = plan.join_decisions[0]
        assert {decision.build_table, decision.probe_table} == {"lineitem", "orders"}


class TestExecutor:
    def test_scan_query_counts_matching_rows(self, small_db, tpch_tables):
        predicate = eq("l_returnflag", 1)
        result = small_db.run(scan_query("lineitem", [predicate]), adapt=False)
        expected = int((tpch_tables["lineitem"].columns["l_returnflag"] == 1).sum())
        assert result.output_rows == expected
        assert result.blocks_read > 0
        assert result.join_methods == []

    def test_join_query_produces_stats(self, small_db):
        result = small_db.run(tpch_query("q12", small_db.rng), adapt=False)
        assert result.join_methods and result.join_methods[0] in ("hyper", "shuffle")
        assert result.cost_units > 0
        assert result.runtime_seconds == pytest.approx(
            small_db.cluster.cost_model.to_seconds(result.cost_units)
        )

    def test_adaptation_cost_charged_to_query(self, small_db):
        with_adapt = small_db.run(tpch_query("q12", small_db.rng))
        assert with_adapt.blocks_repartitioned > 0
        assert with_adapt.trees_created >= 1

    def test_runtime_decreases_after_convergence(self, small_db):
        rng = small_db.rng
        results = [small_db.run(tpch_query("q12", rng)) for _ in range(14)]
        assert min(r.cost_units for r in results[-3:]) < results[0].cost_units

    def test_used_hyper_join_property(self, small_db):
        rng = small_db.rng
        for _ in range(12):
            result = small_db.run(tpch_query("q12", rng))
        assert result.used_hyper_join

    def test_multi_join_query_executes_every_clause(self, small_config, tpch_tables):
        db = AdaptDB(small_config)
        for name in ("lineitem", "orders", "customer"):
            db.load_table(tpch_tables[name])
        result = db.run(tpch_query("q3", db.rng), adapt=False)
        assert len(result.join_methods) == 2
        assert len(result.join_stats) == 2
