"""Tests for repro.storage.block."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.predicates import between, eq
from repro.common.schema import DataType, Schema
from repro.common.errors import StorageError
from repro.storage.block import Block, compute_ranges, concatenate_columns


def make_block(block_id: int = 0) -> Block:
    return Block(
        block_id=block_id,
        table="t",
        columns={
            "key": np.array([1, 2, 3, 4, 5], dtype=np.int64),
            "value": np.array([10.0, 20.0, 30.0, 40.0, 50.0]),
        },
    )


class TestBlock:
    def test_ranges_computed_automatically(self):
        block = make_block()
        assert block.range_of("key") == (1.0, 5.0)
        assert block.range_of("value") == (10.0, 50.0)

    def test_size_bytes_estimated(self):
        assert make_block().size_bytes == 5 * 8 * 2

    def test_num_rows(self):
        assert make_block().num_rows == 5

    def test_column_names(self):
        assert make_block().column_names == ["key", "value"]

    def test_ragged_columns_rejected(self):
        with pytest.raises(StorageError):
            Block(0, "t", {"a": np.arange(3), "b": np.arange(4)})

    def test_missing_range_metadata_raises(self):
        with pytest.raises(StorageError):
            make_block().range_of("missing")

    def test_empty_block(self):
        block = Block(0, "t", {"a": np.empty(0, dtype=np.int64)})
        assert block.num_rows == 0
        assert block.ranges == {}

    def test_filtered_rows(self):
        block = make_block()
        rows = block.filtered([between("key", 2, 4)])
        assert rows["key"].tolist() == [2, 3, 4]
        assert rows["value"].tolist() == [20.0, 30.0, 40.0]

    def test_filtered_without_predicates_returns_all(self):
        assert make_block().filtered([])["key"].tolist() == [1, 2, 3, 4, 5]

    def test_matching_count(self):
        assert make_block().matching_count([eq("key", 3)]) == 1
        assert make_block().matching_count([]) == 5

    def test_column_access(self):
        assert make_block().column("key").tolist() == [1, 2, 3, 4, 5]
        with pytest.raises(StorageError):
            make_block().column("missing")


class TestComputeRanges:
    def test_skips_empty_columns(self):
        ranges = compute_ranges({"a": np.array([1, 5]), "b": np.empty(0)})
        assert ranges == {"a": (1.0, 5.0)}


class TestConcatenateColumns:
    def test_concatenates_row_wise(self):
        merged = concatenate_columns(
            [{"a": np.array([1, 2])}, {"a": np.array([3])}]
        )
        assert merged["a"].tolist() == [1, 2, 3]

    def test_mismatched_columns_rejected(self):
        with pytest.raises(StorageError):
            concatenate_columns([{"a": np.array([1])}, {"b": np.array([2])}])

    def test_empty_input_with_schema_yields_typed_empty_arrays(self):
        schema = Schema.of(("a", DataType.INT), ("b", DataType.FLOAT))
        merged = concatenate_columns([], schema)
        assert merged["a"].dtype == np.int64 and len(merged["a"]) == 0
        assert merged["b"].dtype == np.float64

    def test_empty_input_without_schema(self):
        assert concatenate_columns([]) == {}
