"""Incremental plan-state maintenance (the delta-patching planner).

Covers the change-descriptor plumbing end to end:

* ``PartitionDelta`` algebra and the bounded per-table delta chain,
* ``patch_overlap_matrix`` audited against brute-force recomputation over
  randomized keep/change/drop/append/permute perturbations,
* the digest-keyed grouping memo,
* ``HyperPlanCache`` delta upgrades and the session plan-cache
  revalidation pass — always checked *bit-identical* against a session
  planning cold (``incremental_planning=False``),
* the chain-overflow fallback (spans past the retained window replan),
* fingerprint identity across all four execution backends after
  incremental patching,
* the calibration satellites (``stored_seconds_per_unit``,
  ``apply_calibration``, ``AdaptDBConfig.calibrated_cost_model``).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api import Session
from repro.common.epochs import PartitionDelta
from repro.common.predicates import between
from repro.common.query import join_query
from repro.common.rng import make_rng
from repro.core import AdaptDBConfig
from repro.join.grouping import group_blocks, matrix_row_digests
from repro.join.overlap import compute_overlap_matrix, patch_overlap_matrix
from repro.parallel.calibrate import (
    CalibrationReport,
    apply_calibration,
    stored_seconds_per_unit,
)

PRED = (5.0, 25.0)


def make_session(tables, incremental=True, **overrides):
    config = AdaptDBConfig(
        rows_per_block=512,
        buffer_blocks=4,
        seed=3,
        incremental_planning=incremental,
        **overrides,
    )
    session = Session(config=config)
    for name in ("lineitem", "orders"):
        session.load_table(tables[name])
    return session


def li_join(low=PRED[0], high=PRED[1]):
    return join_query(
        "lineitem",
        "orders",
        "l_orderkey",
        "o_orderkey",
        predicates={"lineitem": [between("l_quantity", low, high)]},
    )


def resplit_somewhere(table, fraction=0.5, quantity_window=None):
    """Amoeba-style re-split of one bottom leaf pair of ``table``.

    With ``quantity_window=(lo, hi)``, only nodes whose path bounds on
    ``l_quantity`` are disjoint from the window qualify — the re-split then
    provably leaves the window's relevant block set untouched.
    """
    for tree_id in sorted(table.trees):
        tree = table.tree(tree_id)
        for node, bounds in tree.bottom_internal_nodes():
            if quantity_window is not None:
                quantity_bounds = bounds.get("l_quantity")
                if quantity_bounds is None or not (
                    quantity_bounds[1] < quantity_window[0]
                    or quantity_bounds[0] > quantity_window[1]
                ):
                    continue
            left_id, right_id = node.left.block_id, node.right.block_id
            ranges = [
                block_range
                for block_range in (
                    table.join_range_of_block(left_id, node.attribute),
                    table.join_range_of_block(right_id, node.attribute),
                )
                if block_range is not None
            ]
            if not ranges:
                continue
            low = min(r[0] for r in ranges)
            high = max(r[1] for r in ranges)
            if not low < high:
                continue
            cutpoint = low + (high - low) * fraction
            if cutpoint == node.cutpoint:
                cutpoint = low + (high - low) * 0.5
            tree.resplit_node(node, node.attribute, cutpoint)
            table.resplit_leaf_pair(left_id, right_id, node.attribute, cutpoint)
            return left_id, right_id
    return None


# --------------------------------------------------------------------- #
# PartitionDelta algebra
# --------------------------------------------------------------------- #
class TestPartitionDelta:
    def test_merged_unions_all_sets(self):
        merged = PartitionDelta.merged(
            [
                PartitionDelta(blocks_changed={1, 2}, trees_resplit={0}),
                PartitionDelta(blocks_changed={2, 3}, blocks_dropped={9}),
                PartitionDelta(trees_added={4}, trees_dropped={5}),
            ]
        )
        assert merged.blocks_changed == {1, 2, 3}
        assert merged.blocks_dropped == {9}
        assert merged.trees_resplit == {0}
        assert merged.trees_added == {4}
        assert merged.trees_dropped == {5}
        assert not merged.full

    def test_full_dominates_merge(self):
        merged = PartitionDelta.merged(
            [PartitionDelta(blocks_changed={1}), PartitionDelta.full_change()]
        )
        assert merged.full

    def test_touched_blocks_and_tree_set_preservation(self):
        delta = PartitionDelta(blocks_changed={1}, blocks_dropped={2})
        assert delta.touched_blocks == {1, 2}
        assert delta.preserves_tree_set()
        assert not PartitionDelta(trees_added={3}).preserves_tree_set()
        assert not PartitionDelta(trees_dropped={3}).preserves_tree_set()
        assert not PartitionDelta.full_change().preserves_tree_set()


# --------------------------------------------------------------------- #
# The bounded delta chain
# --------------------------------------------------------------------- #
class TestDeltaChain:
    def test_load_records_a_full_descriptor(self, tpch_tables):
        session = make_session(tpch_tables)
        table = session.table("lineitem")
        delta = table.delta_between(0, table.epoch)
        assert delta is not None and delta.full
        session.close()

    def test_empty_span_is_an_empty_delta(self, tpch_tables):
        session = make_session(tpch_tables)
        table = session.table("lineitem")
        delta = table.delta_between(table.epoch, table.epoch)
        assert delta is not None
        assert not delta.full and not delta.touched_blocks
        session.close()

    def test_out_of_range_spans_return_none(self, tpch_tables):
        session = make_session(tpch_tables)
        table = session.table("lineitem")
        assert table.delta_between(table.epoch, table.epoch + 1) is None
        assert table.delta_between(table.epoch, table.epoch - 1) is None
        session.close()

    def test_resplit_records_blocks_and_tree(self, tpch_tables):
        session = make_session(tpch_tables)
        table = session.table("lineitem")
        before = table.epoch
        pair = resplit_somewhere(table)
        assert pair is not None
        delta = table.delta_between(before, table.epoch)
        assert delta is not None and not delta.full
        assert set(pair) <= delta.blocks_changed
        assert delta.trees_resplit
        assert delta.preserves_tree_set()
        session.close()

    def test_chain_overflow_returns_none_for_old_spans(self, tpch_tables):
        session = make_session(tpch_tables)
        table = session.table("lineitem")
        table.delta_chain_limit = 2
        start = table.epoch
        for _ in range(4):
            table.bump_epoch(PartitionDelta(blocks_changed={1}))
        assert table.delta_between(start, table.epoch) is None
        recent = table.delta_between(table.epoch - 1, table.epoch)
        assert recent is not None and recent.blocks_changed == {1}
        session.close()


# --------------------------------------------------------------------- #
# Overlap-matrix patching: randomized audit vs. brute force
# --------------------------------------------------------------------- #
def random_ranges(rng, count):
    lows = rng.uniform(0.0, 100.0, count)
    spans = rng.uniform(0.0, 30.0, count)
    return [(float(lo), float(lo + span)) for lo, span in zip(lows, spans)]


def perturb(rng, old_ranges):
    """Randomly keep/change/drop old ranges, append new ones, permute order.

    Returns the new range list plus ``(new_index, old_index)`` kept pairs.
    """
    survivors = []  # (old_index or None, range)
    for old_index, old_range in enumerate(old_ranges):
        roll = rng.uniform()
        if roll < 0.2:
            continue  # dropped
        if roll < 0.45:  # changed in place (a move/append rewrote the block)
            survivors.append((None, random_ranges(rng, 1)[0]))
        else:
            survivors.append((old_index, old_range))
    for new_range in random_ranges(rng, int(rng.integers(0, 5))):
        survivors.append((None, new_range))
    order = rng.permutation(len(survivors))
    new_ranges = [survivors[int(position)][1] for position in order]
    kept = [
        (new_index, survivors[int(position)][0])
        for new_index, position in enumerate(order)
        if survivors[int(position)][0] is not None
    ]
    return new_ranges, kept


class TestPatchOverlapMatrix:
    @pytest.mark.parametrize("seed", range(8))
    def test_randomized_patch_equals_cold_recompute(self, seed):
        rng = make_rng(seed)
        old_build = random_ranges(rng, int(rng.integers(1, 20)))
        old_probe = random_ranges(rng, int(rng.integers(1, 20)))
        matrix = compute_overlap_matrix(old_build, old_probe)
        for _ in range(3):  # chain several perturbations
            new_build, kept_build = perturb(rng, old_build)
            new_probe, kept_probe = perturb(rng, old_probe)
            patched = patch_overlap_matrix(
                matrix, new_build, new_probe, kept_build, kept_probe
            )
            cold = compute_overlap_matrix(new_build, new_probe)
            assert np.array_equal(patched, cold)
            old_build, old_probe, matrix = new_build, new_probe, patched

    def test_all_kept_is_the_identity(self):
        build = [(0.0, 10.0), (5.0, 15.0)]
        probe = [(8.0, 12.0), (20.0, 30.0), (0.0, 1.0)]
        matrix = compute_overlap_matrix(build, probe)
        patched = patch_overlap_matrix(
            matrix, build, probe,
            [(i, i) for i in range(len(build))],
            [(j, j) for j in range(len(probe))],
        )
        assert np.array_equal(patched, matrix)

    def test_everything_dropped_yields_empty_matrix(self):
        build = [(0.0, 10.0)]
        probe = [(5.0, 6.0)]
        matrix = compute_overlap_matrix(build, probe)
        patched = patch_overlap_matrix(matrix, [], [], [], [])
        assert patched.shape == (0, 0)


# --------------------------------------------------------------------- #
# Digest-keyed grouping memo
# --------------------------------------------------------------------- #
class TestGroupingMemo:
    def test_precomputed_digests_hit_the_cold_entry(self):
        rng = make_rng(11)
        overlap = compute_overlap_matrix(random_ranges(rng, 9), random_ranges(rng, 7))
        cold = group_blocks(overlap, budget=3)
        digests = matrix_row_digests(overlap)
        via_digests = group_blocks(overlap, budget=3, row_digests=digests)
        assert via_digests is cold  # same memo entry, not merely equal


# --------------------------------------------------------------------- #
# Per-block lookup membership (the O(depth) revalidation probe)
# --------------------------------------------------------------------- #
class TestLookupContains:
    def test_matches_full_lookup_across_perturbations(self, tpch_tables):
        """``lookup_contains`` must agree with full ``lookup`` membership.

        Audited over shifting predicate windows and interleaved re-splits
        (which change leaf path bounds) — the probe walks the parent chain
        instead of the whole tree, so any disagreement means the final-
        interval shortcut is unsound.
        """
        session = make_session(tpch_tables)
        table = session.catalog.get("lineitem")
        rng = make_rng(19)
        for round_index in range(6):
            low = 1.0 + 7.0 * (round_index % 5)
            predicates = [between("l_quantity", low, low + 11.0)]
            matched = set(table.lookup(predicates))
            for block_id in table.block_ids():
                assert table.lookup_contains(block_id, predicates) == (
                    block_id in matched
                ), f"block {block_id} disagreed for window ({low}, {low + 11.0})"
            assert not table.lookup_contains(10_000_000, predicates)  # unknown id
            resplit_somewhere(table, fraction=float(rng.uniform(0.2, 0.8)))

    def test_no_predicates_means_every_non_empty_block(self, tpch_tables):
        session = make_session(tpch_tables)
        table = session.catalog.get("orders")
        non_empty = set(table.non_empty_block_ids())
        for block_id in table.block_ids():
            assert table.lookup_contains(block_id, None) == (block_id in non_empty)


# --------------------------------------------------------------------- #
# System level: patched plans are bit-identical to cold planning
# --------------------------------------------------------------------- #
class TestIncrementalBitIdentity:
    def test_hyper_upgrades_fire_and_match_cold_planning(self, tpch_tables):
        """Re-splits *inside* the relevant set force replans; the incremental
        session patches the hyper schedules instead of recomputing them."""
        fingerprints = {}
        stats = {}
        for incremental in (True, False):
            session = make_session(tpch_tables, incremental=incremental)
            sequence = [session.run(li_join(), adapt=False).fingerprint()]
            for step in range(3):
                assert resplit_somewhere(
                    session.table("lineitem"), fraction=0.4 + 0.1 * step
                )
                sequence.append(session.run(li_join(), adapt=False).fingerprint())
            fingerprints[incremental] = sequence
            stats[incremental] = session.cache_stats()
            session.close()
        assert fingerprints[True] == fingerprints[False]
        assert stats[True]["hyper_upgrades"] > 0
        assert stats[False]["hyper_upgrades"] == 0

    def test_plan_revalidation_fires_for_disjoint_resplits(self, tpch_tables):
        """Re-splits disjoint from the predicate window leave the relevant
        set untouched: the whole cached plan is revalidated, not replanned."""
        window = (5.0, 20.0)
        fingerprints = {}
        stats = {}
        for incremental in (True, False):
            session = make_session(tpch_tables, incremental=incremental)
            query = li_join(*window)
            sequence = [session.run(query, adapt=False).fingerprint()]
            for step in range(3):
                assert resplit_somewhere(
                    session.table("lineitem"),
                    fraction=0.4 + 0.1 * step,
                    quantity_window=window,
                )
                sequence.append(session.run(query, adapt=False).fingerprint())
            fingerprints[incremental] = sequence
            stats[incremental] = session.cache_stats()
            session.close()
        assert fingerprints[True] == fingerprints[False]
        assert stats[True]["plan_revalidations"] > 0
        assert stats[False]["plan_revalidations"] == 0

    def test_touched_relevant_set_blocks_revalidation(self, tpch_tables):
        """A re-split inside the relevant set must NOT be revalidated —
        the conservative bail replans (and may still delta-patch)."""
        session = make_session(tpch_tables)
        session.run(li_join(), adapt=False)
        assert resplit_somewhere(session.table("lineitem"))
        session.run(li_join(), adapt=False)
        assert session.cache_stats()["plan_revalidations"] == 0
        session.close()

    def test_adaptive_workload_stays_bit_identical(self, tpch_tables):
        """Real adaptation (smooth moves, Amoeba re-splits, tree drops)
        interleaved with planning: incremental on/off agree query by query."""
        def workload(session):
            results = []
            for step in range(5):
                low = 3.0 + 4.0 * step
                results.append(
                    session.run(li_join(low, low + 15.0), adapt=True).fingerprint()
                )
            return results

        with_patching = make_session(tpch_tables, incremental=True)
        without = make_session(tpch_tables, incremental=False)
        assert workload(with_patching) == workload(without)
        with_patching.close()
        without.close()

    def test_chain_overflow_falls_back_to_cold_planning(self, tpch_tables):
        """Spans past the retained delta window must replan, never guess."""
        fingerprints = {}
        for incremental in (True, False):
            session = make_session(
                tpch_tables, incremental=incremental, delta_chain_limit=1
            )
            sequence = [session.run(li_join(), adapt=False).fingerprint()]
            for step in range(2):
                # Two bumps per round: a span of 2 overflows a chain of 1.
                assert resplit_somewhere(
                    session.table("lineitem"), fraction=0.4 + 0.1 * step
                )
                assert resplit_somewhere(
                    session.table("lineitem"), fraction=0.45 + 0.1 * step
                )
                sequence.append(session.run(li_join(), adapt=False).fingerprint())
            fingerprints[incremental] = sequence
            if incremental:
                stats = session.cache_stats()
                assert stats["hyper_upgrades"] == 0
                assert stats["plan_revalidations"] == 0
            session.close()
        assert fingerprints[True] == fingerprints[False]

    def test_all_four_backends_agree_after_patching(self, tpch_tables):
        """Per backend, the patched session reproduces the cold session
        bit-for-bit; the scheduling backends also agree with each other
        (serial legitimately carries no schedule fields)."""
        fingerprints = {}
        for incremental in (True, False):
            session = make_session(tpch_tables, incremental=incremental)
            session.run(li_join(), adapt=False)
            assert resplit_somewhere(session.table("lineitem"))
            per_backend = {}
            for backend in ("tasks", "serial", "simulated", "parallel"):
                session.use_backend(backend)
                per_backend[backend] = session.run(li_join(), adapt=False).fingerprint()
            fingerprints[incremental] = per_backend
            if incremental:
                assert session.cache_stats()["hyper_upgrades"] > 0
            session.close()
        assert fingerprints[True] == fingerprints[False]
        scheduling = {
            fingerprints[True][backend]
            for backend in ("tasks", "simulated", "parallel")
        }
        assert len(scheduling) == 1


# --------------------------------------------------------------------- #
# Calibration satellites
# --------------------------------------------------------------------- #
class TestCalibration:
    def test_stored_scale_missing_file_is_none(self, tmp_path):
        assert stored_seconds_per_unit(tmp_path / "nope.json") is None

    def test_stored_scale_bad_json_is_none(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text("{not json")
        assert stored_seconds_per_unit(path) is None

    def test_stored_scale_averages_positive_fits(self, tmp_path):
        path = tmp_path / "bench.json"
        payload = {
            "post": {
                "parallel": {
                    "calibration": {
                        "a": {"fitted_seconds_per_unit": 0.002},
                        "b": {"fitted_seconds_per_unit": 0.004},
                        "broken": {"fitted_seconds_per_unit": -1.0},
                    }
                }
            }
        }
        path.write_text(json.dumps(payload))
        assert stored_seconds_per_unit(path) == pytest.approx(0.003)

    def test_apply_calibration_updates_the_frozen_cost_model(self):
        session = Session(config=AdaptDBConfig(seed=3))
        report = CalibrationReport(workload="w", num_workers=1, repeats=1)
        report.fitted_seconds_per_unit = 0.5
        assert apply_calibration(session, report) == 0.5
        assert session.cluster.cost_model.seconds_per_block == 0.5
        session.close()

    def test_apply_calibration_ignores_degenerate_fits(self):
        session = Session(config=AdaptDBConfig(seed=3))
        nominal = session.cluster.cost_model.seconds_per_block
        report = CalibrationReport(workload="w", num_workers=1, repeats=1)
        report.fitted_seconds_per_unit = 0.0
        assert apply_calibration(session, report) == nominal
        session.close()

    def test_calibrated_cost_model_config_reads_the_stored_fit(self):
        expected = stored_seconds_per_unit()
        session = Session(config=AdaptDBConfig(seed=3, calibrated_cost_model=True))
        if expected is None:
            nominal = AdaptDBConfig(seed=3).seconds_per_block
            assert session.cluster.cost_model.seconds_per_block == nominal
        else:
            assert session.cluster.cost_model.seconds_per_block == expected
        session.close()
