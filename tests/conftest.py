"""Shared fixtures for the AdaptDB reproduction test suite.

All fixtures are intentionally small (a few thousand rows, a handful of
blocks) so the whole suite runs in seconds while still exercising multi-block
behaviour everywhere.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.rng import make_rng
from repro.common.sanitize import sanitize_enabled
from repro.common.schema import DataType, Schema
from repro.core import AdaptDB, AdaptDBConfig
from repro.storage.table import ColumnTable
from repro.workloads.cmt import CMTGenerator
from repro.workloads.tpch import TPCHGenerator


def pytest_report_header(config: pytest.Config) -> str:
    """Record whether the runtime sanitizer is active (REPRO_SANITIZE=1).

    CI runs the suite twice — plain, and once with the sanitizer enforcing
    the repro.analysis contracts at runtime; the header line makes the two
    job logs distinguishable at a glance.
    """
    mode = "enabled" if sanitize_enabled() else "disabled"
    return f"repro sanitizer (REPRO_SANITIZE): {mode}"


@pytest.fixture
def rng():
    """A deterministic random generator."""
    return make_rng(12345)


@pytest.fixture(scope="session")
def tpch_tables():
    """Small TPC-H tables (lineitem, orders, customer, part, supplier)."""
    return TPCHGenerator(scale=0.1, seed=7).generate()


@pytest.fixture(scope="session")
def cmt_tables():
    """Small CMT tables (trips, trip_history, trip_latest)."""
    return CMTGenerator(scale=0.05, seed=7).generate()


@pytest.fixture
def small_config():
    """An AdaptDB configuration sized for unit tests."""
    return AdaptDBConfig(rows_per_block=512, buffer_blocks=4, window_size=10, seed=3)


@pytest.fixture
def small_db(small_config, tpch_tables):
    """An AdaptDB instance with lineitem/orders/part loaded."""
    db = AdaptDB(small_config)
    for name in ("lineitem", "orders", "part"):
        db.load_table(tpch_tables[name])
    return db


@pytest.fixture
def simple_table():
    """A tiny two-column table handy for targeted storage tests."""
    schema = Schema.of(("key", DataType.INT), ("value", DataType.FLOAT))
    rng = np.random.default_rng(0)
    columns = {
        "key": np.arange(1, 1001, dtype=np.int64),
        "value": rng.uniform(0.0, 100.0, size=1000),
    }
    return ColumnTable("simple", schema, columns)
