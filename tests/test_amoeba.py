"""Tests for repro.adaptive.amoeba (selection-driven refinement)."""

from __future__ import annotations

import numpy as np

from repro.adaptive.amoeba import AmoebaAdaptor
from repro.adaptive.window import QueryWindow
from repro.cluster import Cluster
from repro.common.predicates import le
from repro.common.query import scan_query
from repro.common.rng import make_rng
from repro.common.schema import DataType, Schema
from repro.partitioning.upfront import UpfrontPartitioner
from repro.storage.dfs import DistributedFileSystem
from repro.storage.table import ColumnTable, StoredTable


def make_table(rows: int = 4096, rows_per_block: int = 512) -> StoredTable:
    """A table whose upfront tree splits only on `unqueried`, so adapting towards
    the frequently queried `hot` attribute is clearly beneficial."""
    rng = np.random.default_rng(21)
    schema = Schema.of(
        ("hot", DataType.INT), ("unqueried", DataType.INT), ("noise", DataType.FLOAT)
    )
    table = ColumnTable(
        "facts",
        schema,
        {
            "hot": rng.integers(0, 10_000, size=rows),
            "unqueried": rng.integers(0, 10_000, size=rows),
            "noise": rng.uniform(0, 1, size=rows),
        },
    )
    dfs = DistributedFileSystem(cluster=Cluster(num_machines=4), rng=make_rng(2))
    tree = UpfrontPartitioner(["unqueried"], rows_per_block).build(
        table.sample(), total_rows=rows
    )
    return StoredTable.load(table, dfs, tree, rows_per_block=rows_per_block)


def hot_window(size: int = 10, count: int = 8) -> QueryWindow:
    window = QueryWindow(size=size)
    for _ in range(count):
        window.add(scan_query("facts", [le("hot", 500)], template="hot-scan"))
    return window


class TestCandidateGeneration:
    def test_candidates_target_hot_attribute(self):
        adaptor = AmoebaAdaptor()
        candidates = adaptor.candidate_transforms(make_table(), hot_window())
        assert candidates
        assert all(candidate.new_attribute == "hot" for candidate in candidates)
        assert all(candidate.benefit > 0 for candidate in candidates)

    def test_no_candidates_without_predicates(self):
        adaptor = AmoebaAdaptor()
        window = QueryWindow(size=10)
        window.add(scan_query("facts"))
        assert adaptor.candidate_transforms(make_table(), window) == []

    def test_no_candidates_for_other_tables(self):
        adaptor = AmoebaAdaptor()
        window = QueryWindow(size=10)
        window.add(scan_query("facts", [le("not_a_column", 3)]))
        assert adaptor.candidate_transforms(make_table(), window) == []

    def test_candidates_sorted_by_benefit(self):
        adaptor = AmoebaAdaptor()
        candidates = adaptor.candidate_transforms(make_table(), hot_window())
        benefits = [candidate.benefit for candidate in candidates]
        assert benefits == sorted(benefits, reverse=True)


class TestAdapt:
    def test_adapt_applies_bounded_number_of_transforms(self):
        adaptor = AmoebaAdaptor(max_transforms_per_query=1)
        stats = adaptor.adapt(make_table(), hot_window())
        assert stats.transforms_applied == 1
        assert stats.blocks_repartitioned == 2

    def test_adapt_preserves_rows(self):
        table = make_table()
        before = table.total_rows
        AmoebaAdaptor().adapt(table, hot_window())
        assert table.total_rows == before

    def test_adapt_improves_pruning_over_repeated_queries(self):
        """After several adaptation rounds the hot predicate should prune blocks."""
        table = make_table()
        window = hot_window()
        predicate = le("hot", 500)
        before = len(table.lookup([predicate]))
        adaptor = AmoebaAdaptor(max_transforms_per_query=2)
        for _ in range(4):
            adaptor.adapt(table, window)
        after = len(table.lookup([predicate]))
        assert after < before

    def test_adapted_blocks_respect_new_split(self):
        table = make_table()
        adaptor = AmoebaAdaptor()
        stats = adaptor.adapt(table, hot_window())
        assert stats.rows_moved > 0
        # Every bottom-level node that now splits on `hot` must have its two
        # blocks separated at the cutpoint.
        for tree in table.trees.values():
            for leaf_parent in _bottom_nodes(tree):
                if leaf_parent.attribute != "hot":
                    continue
                left = table.dfs.peek_block(leaf_parent.left.block_id)
                right = table.dfs.peek_block(leaf_parent.right.block_id)
                if left.num_rows and right.num_rows:
                    assert left.column("hot").max() <= leaf_parent.cutpoint
                    assert right.column("hot").min() > leaf_parent.cutpoint

    def test_no_adaptation_when_benefit_below_threshold(self):
        adaptor = AmoebaAdaptor(benefit_threshold=1e9)
        stats = adaptor.adapt(make_table(), hot_window())
        assert stats.transforms_applied == 0

    def test_join_attribute_levels_are_protected(self):
        """Bottom nodes splitting on a tree's join attribute are never re-split."""
        table = make_table()
        from repro.partitioning.two_phase import TwoPhasePartitioner

        tree = TwoPhasePartitioner("unqueried", ["hot"]).build(
            table.sample, total_rows=table.total_rows, num_leaves=4, join_levels=2
        )
        table.replace_with_tree(tree)
        adaptor = AmoebaAdaptor()
        adaptor.adapt(table, hot_window())
        counts = table.trees[next(iter(table.trees))].attribute_counts()
        assert counts.get("unqueried", 0) == 3  # all three internal nodes untouched


def _bottom_nodes(tree):
    result = []

    def descend(node):
        if node.is_leaf:
            return
        if node.left.is_leaf and node.right.is_leaf:
            result.append(node)
            return
        descend(node.left)
        descend(node.right)

    descend(tree.root)
    return result
