"""Tests for the synthetic CMT dataset generator and query trace."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import WorkloadError
from repro.workloads.cmt import CMT_BASE_ROWS, CMT_SCHEMAS, CMTGenerator


class TestCMTData:
    def test_invalid_scale_rejected(self):
        with pytest.raises(WorkloadError):
            CMTGenerator(scale=0)

    def test_unknown_table_rejected(self):
        with pytest.raises(WorkloadError):
            CMTGenerator(scale=0.1).rows_for("unknown")

    def test_generates_three_tables(self, cmt_tables):
        assert set(cmt_tables) == set(CMT_BASE_ROWS)

    def test_row_counts_scale(self, cmt_tables):
        generator = CMTGenerator(scale=0.05)
        for name, table in cmt_tables.items():
            assert table.num_rows == generator.rows_for(name)

    def test_schemas_validate(self, cmt_tables):
        for name, table in cmt_tables.items():
            assert table.schema.column_names == CMT_SCHEMAS[name].column_names
            table.schema.validate_columns(table.columns)

    def test_history_references_existing_trips(self, cmt_tables):
        trip_ids = set(cmt_tables["trips"].columns["trip_id"].tolist())
        assert set(cmt_tables["trip_history"].columns["trip_id"].tolist()).issubset(trip_ids)

    def test_latest_has_one_row_per_trip(self, cmt_tables):
        latest_ids = cmt_tables["trip_latest"].columns["trip_id"]
        assert len(np.unique(latest_ids)) == len(latest_ids)

    def test_trip_end_after_start(self, cmt_tables):
        trips = cmt_tables["trips"].columns
        assert (trips["end_time"] > trips["start_time"]).all()

    def test_history_is_larger_than_trips(self, cmt_tables):
        assert cmt_tables["trip_history"].num_rows > cmt_tables["trips"].num_rows

    def test_generation_deterministic(self):
        a = CMTGenerator(scale=0.02, seed=5).generate()["trips"]
        b = CMTGenerator(scale=0.02, seed=5).generate()["trips"]
        assert np.array_equal(a.columns["start_time"], b.columns["start_time"])


class TestCMTTrace:
    def test_trace_length_defaults_to_103(self):
        assert len(CMTGenerator(scale=0.02).query_trace()) == 103

    def test_trace_is_deterministic(self):
        a = CMTGenerator(scale=0.02, seed=9).query_trace(30)
        b = CMTGenerator(scale=0.02, seed=9).query_trace(30)
        assert [q.template for q in a] == [q.template for q in b]

    def test_most_queries_join_history(self):
        trace = CMTGenerator(scale=0.02).query_trace()
        history_joins = sum(1 for q in trace if "trip_history" in q.tables)
        assert history_joins > len(trace) / 2

    def test_batch_queries_occupy_positions_30_to_50(self):
        trace = CMTGenerator(scale=0.02).query_trace()
        assert all(q.template == "cmt_batch" for q in trace[30:50])
        assert all(q.template != "cmt_batch" for q in trace[:30])

    def test_trace_contains_scans_and_latest_lookups(self):
        templates = {q.template for q in CMTGenerator(scale=0.02).query_trace()}
        assert "cmt_trip_scan" in templates
        assert "cmt_latest" in templates

    def test_every_query_references_generated_tables(self, cmt_tables):
        trace = CMTGenerator(scale=0.05, seed=7).query_trace(40)
        for query in trace:
            for table in query.tables:
                assert table in cmt_tables
            for table, predicates in query.predicates.items():
                for predicate in predicates:
                    assert predicate.column in cmt_tables[table].schema

    def test_join_attribute_is_trip_id(self):
        trace = CMTGenerator(scale=0.02).query_trace()
        join_queries = [q for q in trace if q.is_join_query]
        assert all(q.join_attribute("trips") == "trip_id" for q in join_queries)
