"""Tests for repro.join.kernels (key histograms, match counting, hash partitioning)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.join.kernels import (
    KeyHistogram,
    gather_columns,
    hash_partition,
    join_match_count,
    join_match_count_arrays,
)
from repro.storage.block import Block


class TestKeyHistogram:
    def test_from_keys_counts_multiplicities(self):
        histogram = KeyHistogram.from_keys(np.array([1, 1, 2, 3, 3, 3]))
        assert histogram.keys.tolist() == [1, 2, 3]
        assert histogram.counts.tolist() == [2, 1, 3]
        assert histogram.total == 6

    def test_from_empty_keys(self):
        histogram = KeyHistogram.from_keys(np.empty(0, dtype=np.int64))
        assert histogram.total == 0

    def test_merge_sums_counts(self):
        merged = KeyHistogram.merge(
            [
                KeyHistogram.from_keys(np.array([1, 2, 2])),
                KeyHistogram.from_keys(np.array([2, 3])),
            ]
        )
        assert merged.keys.tolist() == [1, 2, 3]
        assert merged.counts.tolist() == [1, 3, 1]

    def test_merge_empty_list(self):
        assert KeyHistogram.merge([]).total == 0

    def test_merge_ignores_empty_histograms(self):
        merged = KeyHistogram.merge(
            [KeyHistogram.from_keys(np.empty(0, dtype=np.int64)),
             KeyHistogram.from_keys(np.array([5]))]
        )
        assert merged.keys.tolist() == [5]


class TestJoinMatchCount:
    def test_simple_counts(self):
        left = KeyHistogram.from_keys(np.array([1, 1, 2]))
        right = KeyHistogram.from_keys(np.array([1, 2, 2, 3]))
        # key 1: 2*1, key 2: 1*2
        assert join_match_count(left, right) == 4

    def test_no_common_keys(self):
        left = KeyHistogram.from_keys(np.array([1, 2]))
        right = KeyHistogram.from_keys(np.array([3, 4]))
        assert join_match_count(left, right) == 0

    def test_empty_side(self):
        left = KeyHistogram.from_keys(np.empty(0, dtype=np.int64))
        right = KeyHistogram.from_keys(np.array([1]))
        assert join_match_count(left, right) == 0

    def test_array_wrapper_matches_bruteforce(self, rng):
        left = rng.integers(0, 50, size=300)
        right = rng.integers(0, 50, size=200)
        brute = sum(int((right == key).sum()) for key in left)
        assert join_match_count_arrays(left, right) == brute

    def test_symmetry(self, rng):
        left = rng.integers(0, 30, size=100)
        right = rng.integers(0, 30, size=150)
        assert join_match_count_arrays(left, right) == join_match_count_arrays(right, left)


class TestHashPartition:
    def test_assignment_in_range(self, rng):
        keys = rng.integers(0, 10_000, size=1000)
        parts = hash_partition(keys, 7)
        assert parts.min() >= 0 and parts.max() < 7

    def test_same_key_same_partition(self):
        keys = np.array([42, 42, 42, 7, 7])
        parts = hash_partition(keys, 5)
        assert len(set(parts[:3].tolist())) == 1
        assert len(set(parts[3:].tolist())) == 1

    def test_negative_keys_supported(self):
        parts = hash_partition(np.array([-10, -3, 5]), 4)
        assert (parts >= 0).all()

    def test_invalid_partition_count(self):
        with pytest.raises(ValueError):
            hash_partition(np.array([1]), 0)

    def test_partitions_are_reasonably_balanced(self, rng):
        keys = rng.integers(0, 1_000_000, size=10_000)
        counts = np.bincount(hash_partition(keys, 10), minlength=10)
        assert counts.min() > 0.5 * counts.mean()


class TestGatherColumns:
    def test_concatenates_across_blocks(self):
        blocks = [
            Block(0, "t", {"k": np.array([1, 2], dtype=np.int64)}),
            Block(1, "t", {"k": np.array([3], dtype=np.int64)}),
        ]
        assert gather_columns(blocks, ["k"])["k"].tolist() == [1, 2, 3]

    def test_empty_batch_preserves_source_dtype(self):
        """A float column must stay float even when no block holds rows."""
        empty = Block(0, "t", {"v": np.empty(0, dtype=np.float64)})
        gathered = gather_columns([empty], ["v"])
        assert gathered["v"].dtype == np.float64
        assert len(gathered["v"]) == 0

    def test_no_blocks_at_all_defaults_to_int64(self):
        gathered = gather_columns([], ["k"])
        assert gathered["k"].dtype == np.int64 and len(gathered["k"]) == 0

    def test_streams_pending_chunks_in_row_order(self):
        block = Block(0, "t", {"k": np.array([1, 2], dtype=np.int64)})
        block.append_rows({"k": np.array([3, 4], dtype=np.int64)})
        assert gather_columns([block], ["k"])["k"].tolist() == [1, 2, 3, 4]
