"""Whole-repo collection smoke test.

Regression guard for the conftest collision that used to break the tier-1
command: ``benchmarks/conftest.py`` and ``tests/conftest.py`` both imported
as a top-level ``conftest`` module, so collecting the repo root failed before
a single test ran.  ``--import-mode=importlib`` (set in ``pyproject.toml``)
gives each module a unique name; this test collects the entire repository in
a subprocess to prove the suite stays collectable.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_whole_repo_collects():
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run(
        [sys.executable, "-m", "pytest", "--collect-only", "-q", "-p", "no:cacheprovider"],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, (
        "pytest --collect-only failed over the whole repo:\n"
        f"{completed.stdout}\n{completed.stderr}"
    )
    summary = completed.stdout.strip().splitlines()[-1]
    assert "error" not in summary.lower(), summary
