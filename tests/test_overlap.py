"""Tests for repro.join.overlap."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import PlanningError
from repro.join.overlap import (
    compute_overlap_matrix,
    delta,
    probe_blocks_needed,
    ranges_overlap,
    union_vector,
)


class TestRangesOverlap:
    def test_overlapping(self):
        assert ranges_overlap((0, 10), (5, 15))

    def test_touching_endpoints_count_as_overlap(self):
        assert ranges_overlap((0, 10), (10, 20))

    def test_disjoint(self):
        assert not ranges_overlap((0, 10), (11, 20))

    def test_containment(self):
        assert ranges_overlap((0, 100), (40, 60))


class TestComputeOverlapMatrix:
    def test_figure_4_example(self):
        """The paper's Figure 4: V = {1000, 1100, 0110, 0011}."""
        build = [(0, 100), (100, 200), (200, 300), (300, 400)]
        probe = [(0, 150), (150, 250), (250, 350), (350, 400)]
        matrix = compute_overlap_matrix(build, probe)
        expected = np.array(
            [
                [1, 0, 0, 0],
                [1, 1, 0, 0],
                [0, 1, 1, 0],
                [0, 0, 1, 1],
            ],
            dtype=bool,
        )
        # Interval endpoints are shared (e.g. 100 belongs to r1 and r2), so the
        # touching cells are also set; the paper's figure treats the ranges as
        # half-open.  Verify at least the paper's cells are present and that no
        # *disjoint* pair is marked.
        assert (matrix & expected).sum() == expected.sum()
        assert not matrix[0, 2] and not matrix[0, 3] and not matrix[3, 0]

    def test_shapes(self):
        matrix = compute_overlap_matrix([(0, 1)] * 3, [(0, 1)] * 5)
        assert matrix.shape == (3, 5)

    def test_empty_inputs(self):
        assert compute_overlap_matrix([], [(0, 1)]).shape == (0, 1)
        assert compute_overlap_matrix([(0, 1)], []).shape == (1, 0)

    def test_inverted_range_rejected(self):
        with pytest.raises(PlanningError):
            compute_overlap_matrix([(10, 0)], [(0, 1)])

    def test_co_partitioned_layout_is_identity_like(self):
        """Perfectly aligned ranges overlap only on the diagonal."""
        edges = np.linspace(0, 100, 9)
        ranges = [(float(lo), float(hi) - 1e-9) for lo, hi in zip(edges, edges[1:])]
        matrix = compute_overlap_matrix(ranges, ranges)
        assert matrix.sum() == len(ranges)
        assert np.array_equal(matrix, np.eye(len(ranges), dtype=bool))

    def test_unpartitioned_build_side_overlaps_everything(self):
        build = [(0, 1000)] * 4
        probe = [(0, 100), (100, 300), (300, 1000)]
        assert compute_overlap_matrix(build, probe).all()

    def test_matches_bruteforce(self, rng):
        starts = rng.uniform(0, 100, size=20)
        build = [(float(s), float(s + rng.uniform(1, 20))) for s in starts]
        starts = rng.uniform(0, 100, size=15)
        probe = [(float(s), float(s + rng.uniform(1, 20))) for s in starts]
        matrix = compute_overlap_matrix(build, probe)
        for i, b in enumerate(build):
            for j, p in enumerate(probe):
                assert matrix[i, j] == ranges_overlap(b, p)


class TestVectorHelpers:
    matrix = np.array([[1, 0, 1], [0, 1, 0], [1, 1, 0]], dtype=bool)

    def test_delta(self):
        assert delta(self.matrix[0]) == 2
        assert delta(np.zeros(4, dtype=bool)) == 0

    def test_union_vector(self):
        union = union_vector(self.matrix, [0, 1])
        assert union.tolist() == [True, True, True]

    def test_union_of_empty_set(self):
        assert union_vector(self.matrix, []).sum() == 0

    def test_probe_blocks_needed(self):
        assert probe_blocks_needed(self.matrix) == 3
        assert probe_blocks_needed(np.zeros((2, 4), dtype=bool)) == 0
        assert probe_blocks_needed(np.zeros((0, 0), dtype=bool)) == 0
