"""Tests for repro.partitioning.tree (routing, lookup, structure)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import PartitioningError
from repro.common.predicates import between, eq, gt, le
from repro.partitioning.tree import PartitioningTree, TreeNode


def two_level_tree() -> PartitioningTree:
    """A 4-leaf tree: split on `a` at 50, then on `b` at 10 / 20."""
    tree = PartitioningTree(
        root=TreeNode(
            attribute="a",
            cutpoint=50.0,
            left=TreeNode(attribute="b", cutpoint=10.0, left=TreeNode(), right=TreeNode()),
            right=TreeNode(attribute="b", cutpoint=20.0, left=TreeNode(), right=TreeNode()),
        )
    )
    tree.assign_block_ids([0, 1, 2, 3])
    return tree


class TestStructure:
    def test_leaves_left_to_right(self):
        assert two_level_tree().block_ids() == [0, 1, 2, 3]

    def test_num_leaves_and_depth(self):
        tree = two_level_tree()
        assert tree.num_leaves == 4
        assert tree.depth() == 2

    def test_single_leaf_tree(self):
        tree = PartitioningTree(root=TreeNode(block_id=7))
        assert tree.num_leaves == 1
        assert tree.depth() == 0
        assert tree.lookup([]) == [7]

    def test_attribute_counts(self):
        assert two_level_tree().attribute_counts() == {"a": 1, "b": 2}

    def test_assign_block_ids_length_mismatch(self):
        tree = two_level_tree()
        with pytest.raises(PartitioningError):
            tree.assign_block_ids([1, 2])

    def test_clone_is_deep(self):
        tree = two_level_tree()
        clone = tree.clone()
        clone.root.cutpoint = 99.0
        clone.leaves()[0].block_id = 42
        assert tree.root.cutpoint == 50.0
        assert tree.leaves()[0].block_id == 0

    def test_describe_mentions_attributes_and_blocks(self):
        text = two_level_tree().describe()
        assert "a <= 50" in text and "leaf block=3" in text


class TestRouting:
    def test_route_rows_to_expected_leaves(self):
        tree = two_level_tree()
        columns = {
            "a": np.array([0, 0, 100, 100]),
            "b": np.array([5, 15, 15, 25]),
        }
        assert tree.route_rows(columns).tolist() == [0, 1, 2, 3]

    def test_route_boundary_goes_left(self):
        tree = two_level_tree()
        columns = {"a": np.array([50]), "b": np.array([10])}
        assert tree.route_rows(columns).tolist() == [0]

    def test_route_empty_input(self):
        assert two_level_tree().route_rows({}).size == 0

    def test_route_missing_column_raises(self):
        with pytest.raises(PartitioningError):
            two_level_tree().route_rows({"a": np.array([1.0])})

    def test_routing_partitions_every_row_exactly_once(self, rng):
        tree = two_level_tree()
        columns = {
            "a": rng.uniform(0, 100, size=500),
            "b": rng.uniform(0, 30, size=500),
        }
        leaves = tree.route_rows(columns)
        assert len(leaves) == 500
        assert set(np.unique(leaves)).issubset({0, 1, 2, 3})


class TestLookup:
    def test_no_predicates_returns_all_blocks(self):
        assert two_level_tree().lookup([]) == [0, 1, 2, 3]

    def test_predicate_on_root_attribute_prunes_half(self):
        assert two_level_tree().lookup([le("a", 10)]) == [0, 1]
        assert two_level_tree().lookup([gt("a", 60)]) == [2, 3]

    def test_predicate_on_second_level(self):
        assert two_level_tree().lookup([le("a", 10), le("b", 5)]) == [0]

    def test_predicate_on_unknown_attribute_does_not_prune(self):
        assert two_level_tree().lookup([eq("c", 1)]) == [0, 1, 2, 3]

    def test_between_predicate_straddling_cutpoint(self):
        assert two_level_tree().lookup([between("a", 40, 60)]) == [0, 1, 2, 3]

    def test_unbound_leaves_are_skipped(self):
        tree = PartitioningTree(
            root=TreeNode(attribute="a", cutpoint=1.0, left=TreeNode(block_id=5), right=TreeNode())
        )
        assert tree.lookup([]) == [5]

    def test_lookup_is_consistent_with_routing(self, rng):
        """Every row routed to a leaf must be found by a point lookup for its values."""
        tree = two_level_tree()
        columns = {"a": rng.uniform(0, 100, size=50), "b": rng.uniform(0, 30, size=50)}
        leaves = tree.route_rows(columns)
        block_ids = tree.block_ids()
        for index in range(50):
            point_predicates = [
                eq("a", float(columns["a"][index])),
                eq("b", float(columns["b"][index])),
            ]
            assert block_ids[leaves[index]] in tree.lookup(point_predicates)


class TestCompiledForm:
    def test_compiled_reused_across_calls(self):
        tree = two_level_tree()
        compiled = tree.compiled()
        tree.lookup([le("a", 10)])
        tree.route_rows({"a": np.array([1.0]), "b": np.array([1.0])})
        assert tree.compiled() is compiled

    def test_resplit_node_patches_compiled_in_place(self):
        tree = two_level_tree()
        compiled = tree.compiled()
        node = tree.root.left  # splits on b at 10
        tree.resplit_node(node, "c", 7.0)
        # Same cache object, updated arrays: routing/lookup see the new split.
        assert tree.compiled() is compiled
        assert tree.lookup([le("c", 5)]) == [0, 2, 3]
        assert tree.lookup([gt("c", 8)]) == [1, 2, 3]
        columns = {
            "a": np.array([0.0, 0.0]),
            "b": np.array([0.0, 0.0]),
            "c": np.array([5.0, 9.0]),
        }
        assert tree.route_rows(columns).tolist() == [0, 1]

    def test_resplit_leaf_raises(self):
        tree = two_level_tree()
        with pytest.raises(PartitioningError):
            tree.resplit_node(tree.leaves()[0], "a", 1.0)

    def test_invalidate_compiled_rebuilds(self):
        tree = two_level_tree()
        compiled = tree.compiled()
        tree.invalidate_compiled()
        assert tree.compiled() is not compiled
        assert tree.block_ids() == [0, 1, 2, 3]

    def test_bottom_internal_nodes_cached_with_bounds(self):
        tree = two_level_tree()
        bottom = tree.bottom_internal_nodes()
        assert tree.bottom_internal_nodes() is bottom
        assert len(bottom) == 2
        (left_node, left_bounds), (right_node, right_bounds) = bottom
        assert left_node.attribute == "b" and left_bounds == {"a": (-np.inf, 50.0)}
        assert right_node.attribute == "b" and right_bounds == {"a": (50.0, np.inf)}

    def test_lookup_matches_route_after_resplit(self, rng):
        tree = two_level_tree()
        tree.resplit_node(tree.root.right, "a", 75.0)
        columns = {"a": rng.uniform(0, 100, size=80), "b": rng.uniform(0, 30, size=80)}
        leaves = tree.route_rows(columns)
        block_ids = tree.block_ids()
        for index in range(80):
            predicates = [
                eq("a", float(columns["a"][index])),
                eq("b", float(columns["b"][index])),
            ]
            assert block_ids[leaves[index]] in tree.lookup(predicates)


class TestLeafBounds:
    def test_bounds_on_root_attribute(self):
        bounds = two_level_tree().leaf_bounds("a")
        assert bounds[0][1] == 50.0 and bounds[3][0] == 50.0

    def test_bounds_on_lower_attribute(self):
        bounds = two_level_tree().leaf_bounds("b")
        assert bounds[0] == (-np.inf, 10.0)
        assert bounds[3] == (20.0, np.inf)

    def test_bounds_on_absent_attribute_are_infinite(self):
        bounds = two_level_tree().leaf_bounds("missing")
        assert all(lo == -np.inf and hi == np.inf for lo, hi in bounds.values())
