"""Tests for the synthetic TPC-H generator and query templates."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import WorkloadError
from repro.common.predicates import rows_matching
from repro.common.rng import make_rng
from repro.workloads.tpch import BASE_ROWS, TPCH_SCHEMAS, TPCHGenerator
from repro.workloads.tpch_queries import (
    EVALUATED_TEMPLATES,
    JOIN_TEMPLATES,
    TEMPLATE_FUNCTIONS,
    tables_for_templates,
    tpch_query,
)


class TestTPCHGenerator:
    def test_invalid_scale_rejected(self):
        with pytest.raises(WorkloadError):
            TPCHGenerator(scale=0)

    def test_row_counts_scale_linearly(self):
        small = TPCHGenerator(scale=0.1)
        assert small.rows_for("lineitem") == 6_000
        assert small.rows_for("orders") == 1_500

    def test_unknown_table_rejected(self):
        with pytest.raises(WorkloadError):
            TPCHGenerator(scale=0.1).rows_for("nation")
        with pytest.raises(WorkloadError):
            TPCHGenerator(scale=0.1).generate(["nation"])

    def test_generate_all_tables(self, tpch_tables):
        assert set(tpch_tables) == set(BASE_ROWS)
        for name, table in tpch_tables.items():
            assert table.num_rows == TPCHGenerator(scale=0.1).rows_for(name)
            table.schema.validate_columns(table.columns)

    def test_schemas_match_declared(self, tpch_tables):
        for name, table in tpch_tables.items():
            assert table.schema.column_names == TPCH_SCHEMAS[name].column_names

    def test_generation_is_deterministic(self):
        a = TPCHGenerator(scale=0.05, seed=3).generate(["orders"])["orders"]
        b = TPCHGenerator(scale=0.05, seed=3).generate(["orders"])["orders"]
        assert np.array_equal(a.columns["o_orderdate"], b.columns["o_orderdate"])

    def test_different_seeds_differ(self):
        a = TPCHGenerator(scale=0.05, seed=3).generate(["orders"])["orders"]
        b = TPCHGenerator(scale=0.05, seed=4).generate(["orders"])["orders"]
        assert not np.array_equal(a.columns["o_orderdate"], b.columns["o_orderdate"])

    def test_lineitem_orderkeys_reference_orders(self, tpch_tables):
        order_keys = set(tpch_tables["orders"].columns["o_orderkey"].tolist())
        assert set(tpch_tables["lineitem"].columns["l_orderkey"].tolist()).issubset(order_keys)

    def test_lineitem_partkeys_reference_parts(self, tpch_tables):
        part_keys = set(tpch_tables["part"].columns["p_partkey"].tolist())
        assert set(tpch_tables["lineitem"].columns["l_partkey"].tolist()).issubset(part_keys)

    def test_lineitem_fanout_roughly_four(self, tpch_tables):
        fanout = tpch_tables["lineitem"].num_rows / tpch_tables["orders"].num_rows
        assert 3.0 < fanout < 5.0

    def test_ship_after_order_date(self, tpch_tables):
        lineitem = tpch_tables["lineitem"].columns
        orders = tpch_tables["orders"].columns
        order_date = dict(zip(orders["o_orderkey"].tolist(), orders["o_orderdate"].tolist()))
        ship = lineitem["l_shipdate"][:500]
        keys = lineitem["l_orderkey"][:500]
        assert all(s > order_date[k] for s, k in zip(ship.tolist(), keys.tolist()))

    def test_primary_keys_are_unique(self, tpch_tables):
        for table, key in (("orders", "o_orderkey"), ("customer", "c_custkey"),
                           ("part", "p_partkey"), ("supplier", "s_suppkey")):
            values = tpch_tables[table].columns[key]
            assert len(np.unique(values)) == len(values)

    def test_generate_subset_only(self):
        tables = TPCHGenerator(scale=0.05).generate(["lineitem", "part"])
        assert set(tables) == {"lineitem", "part"}


class TestTemplates:
    def test_all_paper_templates_available(self):
        assert set(EVALUATED_TEMPLATES) == {"q3", "q5", "q6", "q8", "q10", "q12", "q14", "q19"}
        assert set(JOIN_TEMPLATES) == set(EVALUATED_TEMPLATES) - {"q6"}

    def test_unknown_template_rejected(self):
        with pytest.raises(WorkloadError):
            tpch_query("q99")

    @pytest.mark.parametrize("template", sorted(TEMPLATE_FUNCTIONS))
    def test_template_produces_valid_query(self, template, rng):
        query = tpch_query(template, rng)
        assert query.template == template
        for table in query.predicates:
            assert table in query.tables
        for clause in query.joins:
            assert clause.left_table in query.tables and clause.right_table in query.tables

    @pytest.mark.parametrize("template", sorted(TEMPLATE_FUNCTIONS))
    def test_template_predicates_reference_real_columns(self, template, rng, tpch_tables):
        query = tpch_query(template, rng)
        for table, predicates in query.predicates.items():
            for predicate in predicates:
                assert predicate.column in tpch_tables[table].schema

    def test_q6_is_scan_only(self, rng):
        assert not tpch_query("q6", rng).is_join_query

    def test_lineitem_join_attribute_per_template(self, rng):
        assert tpch_query("q12", rng).join_attribute("lineitem") == "l_orderkey"
        assert tpch_query("q14", rng).join_attribute("lineitem") == "l_partkey"
        assert tpch_query("q19", rng).join_attribute("lineitem") == "l_partkey"
        assert tpch_query("q8", rng).join_attribute("lineitem") == "l_partkey"

    def test_parameters_are_randomized(self):
        rng = make_rng(1)
        values = {tpch_query("q14", rng).predicates["lineitem"][0].value for _ in range(10)}
        assert len(values) > 1

    def test_selective_templates_actually_select(self, rng, tpch_tables):
        """q14's one-month shipdate window keeps only a small fraction of lineitem."""
        query = tpch_query("q14", rng)
        mask = rows_matching(tpch_tables["lineitem"].columns, query.predicates_on("lineitem"))
        assert 0 < mask.mean() < 0.10

    def test_q5_has_no_lineitem_predicate(self, rng):
        assert tpch_query("q5", rng).predicates_on("lineitem") == []

    def test_tables_for_templates(self):
        assert tables_for_templates(["q12"]) == ["lineitem", "orders"]
        assert tables_for_templates(["q14", "q19"]) == ["lineitem", "part"]
        assert "customer" in tables_for_templates(["q3"])
