"""Property-based tests (hypothesis) for the core data structures and invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.common.predicates import between, eq, ge, le
from repro.join.grouping import bottom_up_grouping, first_fit_grouping, greedy_grouping, grouping_cost
from repro.join.kernels import KeyHistogram, join_match_count, join_match_count_arrays
from repro.join.overlap import compute_overlap_matrix, probe_blocks_needed, ranges_overlap
from repro.partitioning.builders import build_median_tree, median_cutpoint
from repro.partitioning.tree import PartitioningTree

# --------------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------------- #

key_arrays = arrays(
    dtype=np.int64,
    shape=st.integers(min_value=0, max_value=200),
    elements=st.integers(min_value=0, max_value=50),
)


@st.composite
def interval_lists(draw, max_intervals=20):
    count = draw(st.integers(min_value=0, max_value=max_intervals))
    intervals = []
    for _ in range(count):
        lo = draw(st.floats(min_value=0, max_value=1000, allow_nan=False))
        width = draw(st.floats(min_value=0, max_value=200, allow_nan=False))
        intervals.append((lo, lo + width))
    return intervals


@st.composite
def overlap_matrices(draw):
    build = draw(interval_lists())
    probe = draw(interval_lists())
    return compute_overlap_matrix(build, probe)


# --------------------------------------------------------------------------- #
# Overlap properties
# --------------------------------------------------------------------------- #


class TestOverlapProperties:
    @given(interval_lists(), interval_lists())
    @settings(max_examples=50, deadline=None)
    def test_matrix_matches_pairwise_overlap(self, build, probe):
        matrix = compute_overlap_matrix(build, probe)
        assert matrix.shape == (len(build), len(probe))
        for i, b in enumerate(build):
            for j, p in enumerate(probe):
                assert matrix[i, j] == ranges_overlap(b, p)

    @given(interval_lists(), interval_lists())
    @settings(max_examples=50, deadline=None)
    def test_transpose_symmetry(self, build, probe):
        forward = compute_overlap_matrix(build, probe)
        backward = compute_overlap_matrix(probe, build)
        assert np.array_equal(forward, backward.T)

    @given(interval_lists())
    @settings(max_examples=30, deadline=None)
    def test_every_block_overlaps_itself(self, ranges):
        matrix = compute_overlap_matrix(ranges, ranges)
        if len(ranges):
            assert matrix.diagonal().all()


# --------------------------------------------------------------------------- #
# Grouping properties
# --------------------------------------------------------------------------- #


class TestGroupingProperties:
    @given(overlap_matrices(), st.integers(min_value=1, max_value=8))
    @settings(max_examples=60, deadline=None)
    def test_bottom_up_is_a_valid_partitioning(self, overlap, budget):
        grouping = bottom_up_grouping(overlap, budget)
        grouping.validate(overlap.shape[0], budget)
        assert grouping.total_probe_reads == sum(grouping_cost(overlap, grouping.groups))

    @given(overlap_matrices(), st.integers(min_value=1, max_value=8))
    @settings(max_examples=60, deadline=None)
    def test_cost_bounded_below_by_needed_probe_blocks(self, overlap, budget):
        """No grouping can read fewer probe blocks than the number that overlap at all."""
        grouping = bottom_up_grouping(overlap, budget)
        assert grouping.total_probe_reads >= probe_blocks_needed(overlap)

    @given(overlap_matrices(), st.integers(min_value=1, max_value=8))
    @settings(max_examples=60, deadline=None)
    def test_cost_bounded_above_by_total_overlaps(self, overlap, budget):
        """Sharing can only reduce reads relative to probing per build block."""
        grouping = bottom_up_grouping(overlap, budget)
        assert grouping.total_probe_reads <= int(overlap.sum())

    @given(overlap_matrices(), st.integers(min_value=1, max_value=8))
    @settings(max_examples=40, deadline=None)
    def test_all_heuristics_produce_valid_groupings(self, overlap, budget):
        for algorithm in (bottom_up_grouping, greedy_grouping, first_fit_grouping):
            algorithm(overlap, budget).validate(overlap.shape[0], budget)


# --------------------------------------------------------------------------- #
# Join kernel properties
# --------------------------------------------------------------------------- #


class TestJoinKernelProperties:
    @given(key_arrays, key_arrays)
    @settings(max_examples=60, deadline=None)
    def test_match_count_equals_bruteforce(self, left, right):
        brute = sum(int((right == key).sum()) for key in left)
        assert join_match_count_arrays(left, right) == brute

    @given(key_arrays, key_arrays)
    @settings(max_examples=60, deadline=None)
    def test_match_count_is_symmetric(self, left, right):
        assert join_match_count_arrays(left, right) == join_match_count_arrays(right, left)

    @given(key_arrays, key_arrays, key_arrays)
    @settings(max_examples=40, deadline=None)
    def test_histogram_merge_distributes_over_join(self, a, b, probe):
        """join(merge(a, b), probe) == join(a, probe) + join(b, probe)."""
        merged = KeyHistogram.merge([KeyHistogram.from_keys(a), KeyHistogram.from_keys(b)])
        split_sum = join_match_count_arrays(a, probe) + join_match_count_arrays(b, probe)
        assert join_match_count(merged, KeyHistogram.from_keys(probe)) == split_sum

    @given(key_arrays)
    @settings(max_examples=40, deadline=None)
    def test_histogram_total_preserved(self, keys):
        assert KeyHistogram.from_keys(keys).total == len(keys)


# --------------------------------------------------------------------------- #
# Partitioning tree properties
# --------------------------------------------------------------------------- #


class TestTreeProperties:
    @given(
        arrays(np.float64, st.integers(min_value=2, max_value=400),
               elements=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)),
    )
    @settings(max_examples=50, deadline=None)
    def test_median_cutpoint_splits_properly(self, values):
        cut = median_cutpoint(values)
        if cut is None:
            assert len(np.unique(values)) < 2
        else:
            assert 0 < (values <= cut).sum() < len(values)

    @given(
        arrays(np.float64, st.integers(min_value=16, max_value=300),
               elements=st.floats(min_value=0, max_value=1e4, allow_nan=False)),
        st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=40, deadline=None)
    def test_routing_covers_every_row_exactly_once(self, values, num_leaves):
        sample = {"a": values}
        root = build_median_tree(sample, num_leaves, lambda d, p, i: "a", ["a"])
        tree = PartitioningTree(root=root)
        leaf_indices = tree.route_rows(sample)
        assert len(leaf_indices) == len(values)
        assert leaf_indices.min() >= 0 and leaf_indices.max() < num_leaves

    @given(
        arrays(np.float64, st.integers(min_value=32, max_value=300),
               elements=st.floats(min_value=0, max_value=1e4, allow_nan=False)),
        st.integers(min_value=2, max_value=8),
        st.floats(min_value=0, max_value=1e4, allow_nan=False),
    )
    @settings(max_examples=40, deadline=None)
    def test_lookup_is_a_superset_of_matching_blocks(self, values, num_leaves, probe_value):
        """Every row satisfying a predicate lives in a block returned by lookup."""
        sample = {"a": values}
        root = build_median_tree(sample, num_leaves, lambda d, p, i: "a", ["a"])
        tree = PartitioningTree(root=root)
        tree.assign_block_ids(list(range(tree.num_leaves)))
        leaf_indices = tree.route_rows(sample)
        for predicate in (le("a", probe_value), ge("a", probe_value), eq("a", probe_value),
                          between("a", probe_value, probe_value + 100)):
            allowed = set(tree.lookup([predicate]))
            mask = predicate.mask(values)
            touched = set(leaf_indices[mask].tolist())
            assert touched.issubset(allowed)
