"""Tests for the task-based parallel execution engine (repro.exec).

Covers the scheduler (locality-aware placement, makespan accounting,
determinism), plan compilation, batched DFS reads and the two executor
accounting regressions: multi-join queries must report the *final* join's
cardinality, and pure-scan matches must be accounted separately from join
output in mixed scan+join queries.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.predicates import ge
from repro.common.query import Query, JoinClause, join_query, scan_query
from repro.core import AdaptDB, AdaptDBConfig
from repro.exec import Scheduler, Task, TaskKind, TaskSchedule, compile_plan
from repro.exec.scheduler import bucket_blocks_by_replica, replica_hints
from repro.join.kernels import batch_matching_count, gather_filtered_keys
from repro.testing import reference_join_count
from repro.workloads.tpch_queries import tpch_query


def make_task(task_id, cost, hints=None, stage=0, kind=TaskKind.SCAN, blocks=()):
    return Task(
        task_id=task_id,
        kind=kind,
        cost_units=cost,
        block_ids=tuple(blocks),
        stage=stage,
        replica_hints=hints or {},
    )


class TestScheduler:
    def test_placement_prefers_replica_holders(self):
        scheduler = Scheduler(num_machines=4)
        task = make_task(0, 5.0, hints={2: 3}, blocks=(1, 2, 3))
        schedule = scheduler.schedule([task])
        assert schedule.assignments[2] == [task]

    def test_placement_falls_back_to_least_loaded_when_locality_too_costly(self):
        scheduler = Scheduler(num_machines=2)
        heavy = make_task(0, 10.0, hints={0: 1})
        light = make_task(1, 1.0, hints={0: 1})
        schedule = scheduler.schedule([heavy, light])
        # Machine 0 already carries the 10-unit task; queueing the 1-unit
        # task behind it costs more than a remote read on idle machine 1.
        assert schedule.assignments[0] == [heavy]
        assert schedule.assignments[1] == [light]

    def test_makespan_is_max_machine_load(self):
        scheduler = Scheduler(num_machines=3)
        tasks = [make_task(i, cost) for i, cost in enumerate([5.0, 3.0, 2.0, 2.0])]
        schedule = scheduler.schedule(tasks)
        loads = schedule.machine_loads
        assert schedule.makespan == max(loads)
        assert schedule.total_cost == pytest.approx(12.0)
        # LPT over 3 machines balances 5/3/2+2 into loads {5, 3, 4}.
        assert sorted(loads) == pytest.approx([3.0, 4.0, 5.0])

    def test_schedule_is_deterministic(self):
        tasks = [
            make_task(i, cost, hints={i % 5: 1})
            for i, cost in enumerate([3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0])
        ]
        first = Scheduler(num_machines=5).schedule(tasks)
        second = Scheduler(num_machines=5).schedule(tasks)
        assert [
            [t.task_id for t in first.assignments[m]] for m in range(5)
        ] == [[t.task_id for t in second.assignments[m]] for m in range(5)]

    def test_stage_ordering_in_placements(self):
        reduce_task = make_task(0, 1.0, stage=1, kind=TaskKind.SHUFFLE_REDUCE)
        map_task = make_task(1, 1.0, stage=0, kind=TaskKind.SHUFFLE_MAP)
        schedule = Scheduler(num_machines=2).schedule([reduce_task, map_task])
        ordered = [task.task_id for _, task in schedule.placements()]
        assert ordered == [1, 0]

    def test_empty_schedule(self):
        """A query with an empty relevant-block set compiles to no tasks.

        The edge-case contract: nobody straggled (factor 1.0) and no read
        was local (fraction 0.0) — neither property may divide by zero.
        """
        schedule = Scheduler(num_machines=3).schedule([])
        assert schedule.makespan == 0.0
        assert schedule.total_cost == 0.0
        assert schedule.straggler_factor == 1.0
        assert schedule.locality_fraction == 0.0

    def test_zero_cost_schedule_edge_cases(self):
        """Tasks may carry zero cost (empty shuffle partitions): no division."""
        schedule = Scheduler(num_machines=2).schedule(
            [make_task(0, 0.0), make_task(1, 0.0, kind=TaskKind.SHUFFLE_REDUCE, stage=1)]
        )
        assert schedule.makespan == 0.0
        assert schedule.straggler_factor == 1.0
        assert schedule.locality_fraction == 0.0


class TestBucketing:
    def test_buckets_only_contain_replica_holders(self, small_db):
        dfs = small_db.dfs
        block_ids = small_db.table("lineitem").non_empty_block_ids()
        buckets = bucket_blocks_by_replica(dfs, block_ids, small_db.cluster.num_machines)
        for machine, bucket in buckets.items():
            for block_id in bucket:
                assert machine in dfs.replicas_of(block_id)

    def test_buckets_partition_the_block_list(self, small_db):
        dfs = small_db.dfs
        block_ids = small_db.table("lineitem").non_empty_block_ids()
        buckets = bucket_blocks_by_replica(dfs, block_ids, small_db.cluster.num_machines)
        flattened = sorted(b for bucket in buckets.values() for b in bucket)
        assert flattened == sorted(block_ids)

    def test_replica_hints_count_blocks_per_machine(self, small_db):
        dfs = small_db.dfs
        block_ids = small_db.table("lineitem").non_empty_block_ids()[:4]
        hints = replica_hints(dfs, block_ids)
        assert sum(hints.values()) == sum(len(dfs.replicas_of(b)) for b in block_ids)


class TestCompilation:
    def test_join_plan_compiles_to_tasks_with_matching_cost(self, small_db):
        query = join_query("lineitem", "orders", "l_orderkey", "o_orderkey")
        plan = small_db.plan(query, adapt=False)
        compiled = compile_plan(plan, small_db.catalog, small_db.cluster, small_db.config)
        assert compiled.tasks, "a join plan must compile to at least one task"
        result = small_db.executor.execute(plan)
        assert sum(t.cost_units for t in compiled.tasks) == pytest.approx(result.cost_units)

    def test_shuffle_join_compiles_map_and_reduce_stages(self, tpch_tables):
        config = AdaptDBConfig(rows_per_block=512, force_join_method="shuffle", seed=1)
        db = AdaptDB(config)
        for name in ("lineitem", "orders"):
            db.load_table(tpch_tables[name])
        plan = db.plan(join_query("lineitem", "orders", "l_orderkey", "o_orderkey"), adapt=False)
        compiled = compile_plan(plan, db.catalog, db.cluster, db.config)
        kinds = {task.kind for task in compiled.tasks}
        assert TaskKind.SHUFFLE_MAP in kinds
        assert TaskKind.SHUFFLE_REDUCE in kinds
        assert all(
            task.stage == 1 for task in compiled.tasks if task.kind is TaskKind.SHUFFLE_REDUCE
        )

    def test_shuffle_reduce_tasks_sized_from_partition_rows(self, tpch_tables):
        """Reduce tasks carry the run cost in proportion to actual rows.

        The per-partition row counts are gathered at compile time by
        hash-partitioning the filtered join keys; the per-join total stays
        equation (1)'s ``(CSJ - 1) * blocks`` share, only its split moves.
        """
        config = AdaptDBConfig(rows_per_block=512, force_join_method="shuffle", seed=1)
        db = AdaptDB(config)
        for name in ("lineitem", "orders"):
            db.load_table(tpch_tables[name])
        plan = db.plan(join_query("lineitem", "orders", "l_orderkey", "o_orderkey"), adapt=False)
        compiled = compile_plan(plan, db.catalog, db.cluster, db.config)
        reduces = [t for t in compiled.tasks if t.kind is TaskKind.SHUFFLE_REDUCE]
        maps = [t for t in compiled.tasks if t.kind is TaskKind.SHUFFLE_MAP]
        assert len(reduces) == db.cluster.num_machines
        map_blocks = sum(len(t.block_ids) for t in maps)
        run_total = (db.cluster.cost_model.shuffle_factor - 1.0) * map_blocks
        assert sum(t.cost_units for t in reduces) == pytest.approx(run_total)
        total_rows = sum(t.input_rows for t in reduces)
        assert total_rows > 0
        for task in reduces:
            assert task.cost_units == pytest.approx(
                run_total * task.input_rows / total_rows
            )
        # TPC-H keys are not perfectly uniform mod num_machines: the sizing
        # must actually produce a skewed split, not rediscover the even one.
        costs = [t.cost_units for t in reduces]
        assert max(costs) > min(costs)

    def test_hyper_join_compiles_one_task_per_group(self, tpch_tables):
        config = AdaptDBConfig(rows_per_block=512, force_join_method="hyper", seed=1)
        db = AdaptDB(config)
        for name in ("lineitem", "orders"):
            db.load_table(tpch_tables[name])
        plan = db.plan(join_query("lineitem", "orders", "l_orderkey", "o_orderkey"), adapt=False)
        compiled = compile_plan(plan, db.catalog, db.cluster, db.config)
        group_tasks = [t for t in compiled.tasks if t.kind is TaskKind.HYPER_GROUP]
        assert len(group_tasks) == compiled.hyper_plans[0].grouping.num_groups


class TestExecutorAccounting:
    def test_multi_join_reports_final_join_cardinality(self, small_config, tpch_tables):
        """Regression: output_rows used to be the *first* join's cardinality."""
        db = AdaptDB(small_config)
        for name in ("lineitem", "orders", "customer"):
            db.load_table(tpch_tables[name])
        query = tpch_query("q3", db.rng)
        result = db.run(query, adapt=False)
        final = query.joins[-1]
        expected = reference_join_count(
            tpch_tables[final.left_table],
            tpch_tables[final.right_table],
            final.left_column,
            final.right_column,
            query.predicates_on(final.left_table),
            query.predicates_on(final.right_table),
        )
        assert result.output_rows == expected
        assert result.join_stats[-1].output_rows == expected
        # Per-join stats keep every clause's cardinality.
        assert len(result.join_stats) == len(query.joins)

    def test_mixed_scan_and_join_accounts_scan_rows(self, small_config, tpch_tables):
        """Regression: scan matches were dropped whenever a join existed."""
        db = AdaptDB(small_config)
        for name in ("lineitem", "orders", "part"):
            db.load_table(tpch_tables[name])
        predicate = ge("p_size", 0)  # matches every part row
        query = Query(
            tables=["lineitem", "orders", "part"],
            predicates={"part": [predicate]},
            joins=[JoinClause("lineitem", "orders", "l_orderkey", "o_orderkey")],
        )
        result = db.run(query, adapt=False)
        assert result.scan_output_rows == tpch_tables["part"].num_rows
        expected_join = reference_join_count(
            tpch_tables["lineitem"], tpch_tables["orders"], "l_orderkey", "o_orderkey"
        )
        assert result.output_rows == expected_join

    def test_pure_scan_output_rows_unchanged(self, small_db, tpch_tables):
        predicate = ge("l_shipdate", 0)
        result = small_db.run(scan_query("lineitem", [predicate]), adapt=False)
        assert result.output_rows == result.scan_output_rows
        assert result.output_rows == tpch_tables["lineitem"].num_rows

    def test_makespan_below_serial_sum_on_multi_machine_cluster(
        self, small_config, tpch_tables
    ):
        db = AdaptDB(small_config)
        for name in ("lineitem", "orders", "customer"):
            db.load_table(tpch_tables[name])
        result = db.run(tpch_query("q3", db.rng), adapt=False)
        assert db.cluster.num_machines > 1
        assert 0.0 < result.makespan_cost_units < result.cost_units
        assert result.makespan_cost_units == max(result.machine_cost_units)
        assert sum(result.machine_cost_units) == pytest.approx(result.cost_units)
        assert result.straggler_factor >= 1.0
        assert result.parallel_speedup > 1.0

    def test_empty_relevant_block_set_defines_edge_statistics(self, small_db):
        """A query whose relevant-block set is empty must not divide by zero."""
        plan = small_db.plan(scan_query("lineitem"), adapt=False)
        plan.scan_blocks["lineitem"] = []
        compiled = compile_plan(plan, small_db.catalog, small_db.cluster, small_db.config)
        assert compiled.tasks == []
        schedule = Scheduler(small_db.cluster.num_machines).schedule(compiled.tasks)
        assert schedule.straggler_factor == 1.0
        assert schedule.locality_fraction == 0.0
        result = small_db.executor.execute_schedule(plan, compiled, schedule)
        assert result.output_rows == 0
        assert result.blocks_read == 0
        assert result.makespan_cost_units == 0.0
        assert result.straggler_factor == 1.0

    def test_results_identical_across_runs(self, tpch_tables):
        def run_once():
            db = AdaptDB(AdaptDBConfig(rows_per_block=512, buffer_blocks=4, seed=42))
            for name in ("lineitem", "orders"):
                db.load_table(tpch_tables[name])
            result = db.run(
                join_query("lineitem", "orders", "l_orderkey", "o_orderkey"), adapt=False
            )
            return (
                result.output_rows,
                result.cost_units,
                result.makespan_cost_units,
                tuple(result.machine_cost_units),
            )

        assert run_once() == run_once()


class TestBatchedReads:
    def test_get_blocks_preserves_order_and_counts_reads(self, small_db):
        dfs = small_db.dfs
        block_ids = small_db.table("orders").non_empty_block_ids()[:3]
        dfs.reset_read_stats()
        blocks = dfs.get_blocks(block_ids, reader_machine=0)
        assert [b.block_id for b in blocks] == block_ids
        assert dfs.read_stats.total_reads == len(block_ids)

    def test_get_blocks_accounts_locality_against_reader(self, small_db):
        dfs = small_db.dfs
        block_ids = small_db.table("orders").non_empty_block_ids()[:4]
        dfs.reset_read_stats()
        reader = 1
        dfs.get_blocks(block_ids, reader_machine=reader)
        expected_local = sum(1 for b in block_ids if reader in dfs.replicas_of(b))
        assert dfs.read_stats.local_reads == expected_local
        assert dfs.read_stats.remote_reads == len(block_ids) - expected_local

    def test_batch_kernels_match_per_block_results(self, small_db):
        table = small_db.table("lineitem")
        dfs = small_db.dfs
        blocks = [dfs.peek_block(b) for b in table.non_empty_block_ids()]
        predicates = [ge("l_shipdate", 100)]
        per_block = sum(b.matching_count(predicates) for b in blocks)
        assert batch_matching_count(blocks, predicates) == per_block
        keys = gather_filtered_keys(blocks, "l_orderkey", predicates)
        per_block_keys = np.concatenate(
            [b.filtered(predicates)["l_orderkey"] for b in blocks]
        )
        assert np.array_equal(np.sort(keys), np.sort(per_block_keys))

    def test_engine_reads_locally_where_scheduled(self, small_db):
        """The scheduler's placement should beat round-robin locality."""
        result = small_db.run(scan_query("lineitem"), adapt=False)
        assert result.blocks_read > 0
        # Replica-bucketed scan tasks read every block from a local replica.
        assert small_db.dfs.read_stats.locality_fraction == 1.0
