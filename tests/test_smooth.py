"""Tests for repro.adaptive.smooth (smooth repartitioning, Figure 11)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.adaptive.smooth import SmoothRepartitioner
from repro.adaptive.window import QueryWindow
from repro.cluster import Cluster
from repro.common.predicates import gt
from repro.common.query import join_query, scan_query
from repro.common.rng import make_rng
from repro.common.schema import DataType, Schema
from repro.partitioning.upfront import UpfrontPartitioner
from repro.storage.dfs import DistributedFileSystem
from repro.storage.table import ColumnTable, StoredTable


def make_stored_table(rows: int = 4096, rows_per_block: int = 256) -> StoredTable:
    rng = np.random.default_rng(9)
    schema = Schema.of(
        ("l_orderkey", DataType.INT), ("l_partkey", DataType.INT), ("l_shipdate", DataType.DATE)
    )
    table = ColumnTable(
        "lineitem",
        schema,
        {
            "l_orderkey": rng.integers(0, 5000, size=rows),
            "l_partkey": rng.integers(0, 800, size=rows),
            "l_shipdate": rng.integers(0, 2500, size=rows),
        },
    )
    dfs = DistributedFileSystem(cluster=Cluster(num_machines=4), rng=make_rng(1))
    tree = UpfrontPartitioner(["l_orderkey", "l_partkey", "l_shipdate"], rows_per_block).build(
        table.sample(), total_rows=rows
    )
    return StoredTable.load(table, dfs, tree, rows_per_block=rows_per_block)


def orders_join(template="q12"):
    return join_query(
        "lineitem", "orders", "l_orderkey", "o_orderkey",
        predicates={"lineitem": [gt("l_shipdate", 100)]}, template=template,
    )


def part_join(template="q14"):
    return join_query("lineitem", "part", "l_partkey", "p_partkey", template=template)


class TestPlan:
    def make(self, window_size=10, min_frequency=1):
        table = make_stored_table()
        window = QueryWindow(size=window_size)
        repartitioner = SmoothRepartitioner(
            rows_per_block=256, min_frequency=min_frequency, rng=make_rng(3)
        )
        return table, window, repartitioner

    def test_scan_query_is_noop(self):
        table, window, repartitioner = self.make()
        query = scan_query("lineitem")
        window.add(query)
        plan = repartitioner.plan(table, query, window)
        assert plan.is_noop and plan.join_attribute is None

    def test_first_join_query_creates_tree_and_moves_one_window_fraction(self):
        table, window, repartitioner = self.make(window_size=10)
        query = orders_join()
        window.add(query)
        plan = repartitioner.plan(table, query, window)
        assert plan.created_tree_id is not None
        assert plan.fraction == pytest.approx(1 / 10)
        total_blocks = len(table.non_empty_block_ids())
        assert 1 <= len(plan.blocks_to_move) <= max(1, round(total_blocks * 0.1) + 1)

    def test_new_tree_is_two_phase_on_the_join_attribute(self):
        table, window, repartitioner = self.make()
        query = orders_join()
        window.add(query)
        plan = repartitioner.plan(table, query, window)
        tree = table.tree(plan.created_tree_id)
        assert tree.join_attribute == "l_orderkey"
        assert tree.join_levels >= 1

    def test_min_frequency_defers_tree_creation(self):
        table, window, repartitioner = self.make(min_frequency=3)
        query = orders_join()
        window.add(query)
        plan = repartitioner.plan(table, query, window)
        assert plan.is_noop
        for _ in range(2):
            extra = orders_join()
            window.add(extra)
            plan = repartitioner.plan(table, extra, window)
        assert plan.created_tree_id is not None

    def test_fraction_tracks_window_share(self):
        """After the window is saturated with one join attribute, the target tree
        should be asked to hold (roughly) the full dataset."""
        table, window, repartitioner = self.make(window_size=5)
        plan = None
        for _ in range(5):
            query = orders_join()
            window.add(query)
            plan = repartitioner.plan(table, query, window)
            repartitioner.apply(table, plan)
        target = table.tree_for_join_attribute("l_orderkey")
        fraction = table.rows_under_tree(target) / table.total_rows
        assert fraction > 0.6

    def test_no_movement_when_target_already_holds_enough(self):
        table, window, repartitioner = self.make(window_size=10)
        # Saturate: move everything to the orderkey tree first.
        for _ in range(12):
            query = orders_join()
            window.add(query)
            repartitioner.apply(table, repartitioner.plan(table, query, window))
        query = orders_join()
        window.add(query)
        plan = repartitioner.plan(table, query, window)
        assert plan.fraction <= 0
        assert plan.blocks_to_move == []


class TestApply:
    def test_apply_moves_rows_and_preserves_total(self):
        table = make_stored_table()
        window = QueryWindow(size=10)
        repartitioner = SmoothRepartitioner(rows_per_block=256, rng=make_rng(3))
        before = table.total_rows
        query = orders_join()
        window.add(query)
        stats = repartitioner.apply(table, repartitioner.plan(table, query, window))
        assert stats.rows_moved > 0
        assert table.total_rows == before

    def test_apply_noop_plan(self):
        table = make_stored_table()
        window = QueryWindow(size=10)
        repartitioner = SmoothRepartitioner(rows_per_block=256, rng=make_rng(3))
        query = scan_query("lineitem")
        window.add(query)
        stats = repartitioner.apply(table, repartitioner.plan(table, query, window))
        assert stats.rows_moved == 0

    def test_workload_shift_builds_second_tree_and_migrates(self):
        """q12 → q14 shift: the partkey tree grows as partkey queries dominate."""
        table = make_stored_table()
        window = QueryWindow(size=10)
        repartitioner = SmoothRepartitioner(rows_per_block=256, rng=make_rng(3))
        for _ in range(10):
            query = orders_join()
            window.add(query)
            repartitioner.apply(table, repartitioner.plan(table, query, window))
        orderkey_tree = table.tree_for_join_attribute("l_orderkey")
        rows_in_orderkey_before = table.rows_under_tree(orderkey_tree)

        for _ in range(10):
            query = part_join()
            window.add(query)
            repartitioner.apply(table, repartitioner.plan(table, query, window))

        partkey_tree = table.tree_for_join_attribute("l_partkey")
        assert partkey_tree is not None
        assert table.rows_under_tree(partkey_tree) > 0
        remaining_orderkey = (
            table.rows_under_tree(orderkey_tree) if orderkey_tree in table.trees else 0
        )
        assert remaining_orderkey < rows_in_orderkey_before
        assert table.total_rows == 4096

    def test_full_shift_eventually_drops_old_tree(self):
        table = make_stored_table()
        window = QueryWindow(size=5)
        repartitioner = SmoothRepartitioner(rows_per_block=256, rng=make_rng(3))
        for _ in range(8):
            query = orders_join()
            window.add(query)
            repartitioner.apply(table, repartitioner.plan(table, query, window))
        for _ in range(25):
            query = part_join()
            window.add(query)
            repartitioner.apply(table, repartitioner.plan(table, query, window))
        assert table.tree_for_join_attribute("l_partkey") is not None
        # The old order-key tree should by now be empty and dropped.
        assert table.tree_for_join_attribute("l_orderkey") is None
        assert table.num_trees <= 2
