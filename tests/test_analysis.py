"""Tests for repro.analysis: the AST invariant checkers.

Each rule is exercised twice: a known-bad snippet must fire it, and the
fixed twin must stay quiet.  The suite ends with the live gates — the
whole ``src/repro`` tree analyzes clean, and so do the benchmark and
example scripts for the everywhere-on ``unseeded-rng`` rule.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import (
    ALL_CHECKERS,
    ALL_RULES,
    SourceFile,
    analyze_files,
    analyze_paths,
    analyze_source,
)
from repro.analysis.report import (
    Baseline,
    render_rules,
    violations_to_json,
    violations_to_sarif,
)
from repro.common.errors import PlanningError
from repro.common.lru import BoundedLRU

REPO = Path(__file__).resolve().parents[1]
SRC = REPO / "src" / "repro"


def rules_of(violations):
    return {violation.rule for violation in violations}


# --------------------------------------------------------------------- #
# epoch-discipline
# --------------------------------------------------------------------- #
class TestEpochDiscipline:
    def test_mutation_without_bump_fires(self):
        violations = analyze_source(
            """
class StoredTable:
    def bump_epoch(self):
        self._epoch += 1

    def forget(self, tree_id):
        del self.trees[tree_id]
        return tree_id
""",
            module="repro.storage.table",
        )
        assert rules_of(violations) == {"epoch-discipline"}
        assert "forget" in violations[0].message

    def test_mutation_with_bump_is_quiet(self):
        violations = analyze_source(
            """
class StoredTable:
    def bump_epoch(self, delta):
        self._epoch += 1

    def forget(self, tree_id, delta):
        del self.trees[tree_id]
        self.bump_epoch(delta)
        return tree_id
""",
            module="repro.storage.table",
        )
        assert violations == []

    def test_bump_on_one_branch_only_fires(self):
        violations = analyze_source(
            """
class StoredTable:
    def bump_epoch(self, delta):
        self._epoch += 1

    def maybe(self, flag, delta):
        self.trees.clear()
        if flag:
            self.bump_epoch(delta)
""",
            module="repro.storage.table",
        )
        assert rules_of(violations) == {"epoch-discipline"}

    def test_raising_exit_is_exempt(self):
        violations = analyze_source(
            """
class StoredTable:
    def bump_epoch(self, delta):
        self._epoch += 1

    def forget(self, tree_id, delta):
        if tree_id not in self.trees:
            raise KeyError(tree_id)
        del self.trees[tree_id]
        self.bump_epoch(delta)
""",
            module="repro.storage.table",
        )
        assert violations == []

    def test_helper_proven_to_always_bump_counts(self):
        violations = analyze_source(
            """
class StoredTable:
    def bump_epoch(self, delta):
        self._epoch += 1

    def _commit(self, delta):
        self.bump_epoch(delta)

    def forget(self, tree_id, delta):
        del self.trees[tree_id]
        self._commit(delta)
""",
            module="repro.storage.table",
        )
        assert violations == []

    def test_marked_mutator_is_exempt_but_external_calls_fire(self):
        text = """
from repro.common.epochs import mutates_partition_state


class DistributedFileSystem:
    @mutates_partition_state
    def delete_block(self, block_id):
        self._blocks.pop(block_id, None)


def rogue(dfs):
    dfs.delete_block(3)
"""
        violations = analyze_source(text, module="repro.exec.rogue")
        assert rules_of(violations) == {"epoch-discipline"}
        assert "delete_block" in violations[0].message
        # The same call is legal inside the storage layer.
        assert analyze_source(text, module="repro.storage.helpers") == []


class TestEpochDescriptor:
    def test_bare_bump_fires(self):
        violations = analyze_source(
            "def f(table):\n    table.bump_epoch()\n",
            module="repro.storage.snippet",
        )
        assert rules_of(violations) == {"epoch-descriptor"}
        assert "change descriptor" in violations[0].message

    def test_bump_with_delta_is_quiet(self):
        text = (
            "from repro.common.epochs import PartitionDelta\n"
            "\n"
            "\n"
            "def f(table):\n"
            "    table.bump_epoch(PartitionDelta.full_change())\n"
        )
        assert analyze_source(text, module="repro.storage.snippet") == []

    def test_keyword_delta_is_quiet(self):
        text = "def f(table, delta):\n    table.bump_epoch(delta=delta)\n"
        assert analyze_source(text, module="repro.storage.snippet") == []

    def test_fires_outside_storage_layer_too(self):
        violations = analyze_source(
            "def f(table):\n    table.bump_epoch()\n",
            module="repro.core.snippet",
        )
        assert "epoch-descriptor" in rules_of(violations)


class TestEpochDirectWrite:
    def test_foreign_module_write_fires(self):
        violations = analyze_source(
            "def f(table):\n    table._tree_rows[3] = 5\n",
            module="repro.core.opt_snippet",
        )
        assert rules_of(violations) == {"epoch-direct-write"}

    def test_owning_module_write_is_quiet(self):
        violations = analyze_source(
            "def f(table):\n    table._tree_rows[3] = 5\n",
            module="repro.storage.table",
        )
        assert violations == []

    def test_constructor_self_writes_are_exempt(self):
        violations = analyze_source(
            """
class Thing:
    def __init__(self):
        self._blocks = {}
""",
            module="repro.core.thing",
        )
        assert violations == []


# --------------------------------------------------------------------- #
# determinism
# --------------------------------------------------------------------- #
class TestDeterminism:
    def test_stdlib_random_fires_in_scope(self):
        violations = analyze_source("import random\n", module="repro.exec.snippet")
        assert rules_of(violations) == {"no-stdlib-random"}

    def test_stdlib_random_allowed_out_of_scope(self):
        assert analyze_source("import random\n", module="repro.workloads.gen") == []

    def test_global_numpy_rng_fires(self):
        violations = analyze_source(
            "import numpy as np\n\n\ndef f(x):\n    np.random.shuffle(x)\n",
            module="repro.sim.snippet",
        )
        assert "no-global-numpy-rng" in rules_of(violations)

    def test_wall_clock_fires(self):
        violations = analyze_source(
            "import time\n\n\ndef f():\n    return time.perf_counter()\n",
            module="repro.join.snippet",
        )
        assert rules_of(violations) == {"no-wall-clock"}

    def test_from_time_import_fires(self):
        violations = analyze_source(
            "from time import perf_counter\n", module="repro.exec.snippet"
        )
        assert rules_of(violations) == {"no-wall-clock"}

    def test_set_for_loop_fires_and_sorted_fixes_it(self):
        bad = (
            "def f():\n"
            "    out = []\n"
            "    for x in {3, 1, 2}:\n"
            "        out.append(x)\n"
            "    return out\n"
        )
        assert rules_of(analyze_source(bad, module="repro.adaptive.snippet")) == {
            "unsorted-set-iter"
        }
        good = bad.replace("in {3, 1, 2}", "in sorted({3, 1, 2})")
        assert analyze_source(good, module="repro.adaptive.snippet") == []

    def test_order_free_consumers_are_allowed(self):
        text = "def f(s: set[int]):\n    return sum(x * 2 for x in s)\n"
        assert analyze_source(text, module="repro.exec.snippet") == []

    def test_list_of_set_fires(self):
        text = "def f(s: set[int]):\n    return list(s)\n"
        assert rules_of(analyze_source(text, module="repro.exec.snippet")) == {
            "unsorted-set-iter"
        }

    def test_dict_of_sets_propagates_through_items(self):
        text = (
            "def deps(tasks) -> dict[int, set[int]]:\n"
            "    return {}\n"
            "\n"
            "\n"
            "def g(tasks):\n"
            "    out = []\n"
            "    for key, values in deps(tasks).items():\n"
            "        for value in values:\n"
            "            out.append(value)\n"
            "    return out\n"
        )
        assert rules_of(analyze_source(text, module="repro.sim.snippet")) == {
            "unsorted-set-iter"
        }

    def test_unseeded_default_rng_fires_everywhere(self):
        text = "import numpy as np\n\nrng = np.random.default_rng()\n"
        assert rules_of(analyze_source(text, module="repro.workloads.bench")) == {
            "unseeded-rng"
        }
        seeded = text.replace("default_rng()", "default_rng(7)")
        assert analyze_source(seeded, module="repro.workloads.bench") == []


# --------------------------------------------------------------------- #
# cache keys
# --------------------------------------------------------------------- #
class TestCacheKeys:
    def test_undeclared_mutable_read_fires(self):
        text = (
            "from repro.common.epochs import epoch_keyed\n"
            "\n"
            "\n"
            '@epoch_keyed(reads=("epoch",))\n'
            "def relevant(table, predicates):\n"
            "    return table.lookup(predicates)\n"
        )
        violations = analyze_source(text, module="repro.core.snippet")
        assert rules_of(violations) == {"cache-key-read"}
        assert "lookup" in violations[0].message

    def test_declared_read_is_quiet(self):
        text = (
            "from repro.common.epochs import epoch_keyed\n"
            "\n"
            "\n"
            '@epoch_keyed(reads=("epoch", "lookup"))\n'
            "def relevant(table, predicates):\n"
            "    return table.lookup(predicates)\n"
        )
        assert analyze_source(text, module="repro.core.snippet") == []

    def test_missing_registrations_fire(self):
        violations = analyze_source("X = 1\n", module="repro.join.hyperjoin")
        assert rules_of(violations) == {"cache-key-registration"}
        messages = " ".join(violation.message for violation in violations)
        assert "plan_hyper_join" in messages
        assert "HyperPlanCache.get_or_plan" in messages

    def test_present_registrations_are_quiet(self):
        text = (
            "from repro.common.epochs import epoch_keyed\n"
            "\n"
            "\n"
            "@epoch_keyed(reads=())\n"
            "def plan_hyper_join():\n"
            "    return None\n"
            "\n"
            "\n"
            "class HyperPlanCache:\n"
            "    @epoch_keyed(reads=())\n"
            "    def get_or_plan(self):\n"
            "        return None\n"
        )
        assert analyze_source(text, module="repro.join.hyperjoin") == []


# --------------------------------------------------------------------- #
# task purity
# --------------------------------------------------------------------- #
class TestTaskPurity:
    def test_banned_field_annotation_fires(self):
        text = (
            "class Task:\n"
            "    kind: int\n"
            '    block: "Block"\n'
        )
        violations = analyze_source(text, module="repro.exec.tasks_snippet")
        assert rules_of(violations) == {"task-purity-field"}
        assert len(violations) == 1  # only the Block field, not ``kind``

    def test_tainted_capture_fires_and_ids_are_fine(self):
        bad = (
            "def compile_tasks(dfs, ids):\n"
            "    blocks = dfs.get_blocks(ids)\n"
            "    return Task(blocks)\n"
        )
        violations = analyze_source(bad, module="repro.exec.snippet")
        assert rules_of(violations) == {"task-purity-capture"}
        good = bad.replace("Task(blocks)", "Task(ids)")
        assert analyze_source(good, module="repro.exec.snippet") == []

    def test_direct_storage_call_argument_fires(self):
        text = "def f(dfs):\n    return Task(dfs.get_block(3))\n"
        assert rules_of(analyze_source(text, module="repro.exec.snippet")) == {
            "task-purity-capture"
        }

    def test_out_of_scope_module_is_quiet(self):
        text = "def f(dfs):\n    return Task(dfs.get_block(3))\n"
        assert analyze_source(text, module="repro.workloads.snippet") == []


# --------------------------------------------------------------------- #
# framework mechanics
# --------------------------------------------------------------------- #
class TestFramework:
    def test_suppression_on_the_line(self):
        text = "import random  # repro: allow[no-stdlib-random]\n"
        assert analyze_source(text, module="repro.exec.snippet") == []

    def test_suppression_on_the_line_above(self):
        text = "# repro: allow[no-stdlib-random]\nimport random\n"
        assert analyze_source(text, module="repro.exec.snippet") == []

    def test_suppression_with_wrong_rule_id_does_not_apply(self):
        text = "import random  # repro: allow[no-wall-clock]\n"
        violations = analyze_source(text, module="repro.exec.snippet")
        assert rules_of(violations) == {"no-stdlib-random"}

    def test_rules_filter(self):
        text = "import random\nimport time\n\nt = time.time()\n"
        violations = analyze_source(
            text,
            module="repro.exec.snippet",
            rules=frozenset({"no-wall-clock"}),
        )
        assert rules_of(violations) == {"no-wall-clock"}

    def test_render_format(self):
        violations = analyze_source(
            "import random\n", module="repro.exec.snippet", path="x.py"
        )
        rendered = violations[0].render()
        assert rendered.startswith("x.py:1: [no-stdlib-random]")
        assert "(" in rendered  # the fix hint

    def test_checker_rule_ids_are_unique(self):
        all_rules = [
            rule for checker in ALL_CHECKERS for rule in checker.rules
        ]
        assert len(all_rules) == len(set(all_rules))
        assert set(all_rules) == set(ALL_RULES)


# --------------------------------------------------------------------- #
# the live gates
# --------------------------------------------------------------------- #
class TestRepositoryIsClean:
    def test_src_tree_has_no_violations(self):
        violations, num_files = analyze_paths([SRC])
        assert num_files > 50
        assert violations == [], "\n".join(v.render() for v in violations)

    def test_benchmarks_and_examples_use_seeded_rngs(self):
        paths = [REPO / "benchmarks", REPO / "examples"]
        violations, num_files = analyze_paths(
            paths, rules=frozenset({"unseeded-rng"})
        )
        assert num_files > 0
        assert violations == [], "\n".join(v.render() for v in violations)

    def test_cli_exits_zero_on_clean_tree(self):
        env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", str(SRC)],
            capture_output=True,
            text=True,
            env=env,
            cwd=REPO,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 violations" in proc.stdout

    def test_cli_rejects_unknown_rule(self):
        env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "--rules", "no-such-rule"],
            capture_output=True,
            text=True,
            env=env,
            cwd=REPO,
        )
        assert proc.returncode != 0


# --------------------------------------------------------------------- #
# BoundedLRU key hygiene (satellite)
# --------------------------------------------------------------------- #
class TestBoundedLRUKeys:
    def test_unhashable_put_raises_planning_error(self):
        cache = BoundedLRU(capacity=4)
        with pytest.raises(PlanningError, match="not hashable"):
            cache.put(["list", "key"], "value")

    def test_unhashable_get_raises_planning_error(self):
        cache = BoundedLRU(capacity=4)
        with pytest.raises(PlanningError, match="not hashable"):
            cache.get({"dict": "key"})

    def test_hashable_keys_still_work(self):
        cache = BoundedLRU(capacity=2)
        cache.put(("a", 1), "x")
        assert cache.get(("a", 1)) == "x"
        assert cache.hits == 1


# --------------------------------------------------------------------- #
# delta-completeness / delta-over-description
# --------------------------------------------------------------------- #
class TestDeltaCompleteness:
    BAD = """
from repro.common.epochs import PartitionDelta


class StoredTable:
    def shrink(self, block_id, tree_id):
        del self._block_rows[block_id]
        self.trees[tree_id] = None
        delta = PartitionDelta(blocks_changed={block_id})
        self.bump_epoch(delta)
"""

    GOOD = """
from repro.common.epochs import PartitionDelta


class StoredTable:
    def shrink(self, block_id, tree_id):
        del self._block_rows[block_id]
        self.trees[tree_id] = None
        delta = PartitionDelta(
            blocks_changed={block_id}, trees_dropped={tree_id}
        )
        self.bump_epoch(delta)
"""

    def test_under_described_tree_mutation_fires(self):
        violations = analyze_source(self.BAD, module="repro.storage.table")
        assert rules_of(violations) == {"delta-completeness"}
        assert "tree_id" in violations[0].message
        assert violations[0].severity == "error"

    def test_fully_described_twin_is_quiet(self):
        assert analyze_source(self.GOOD, module="repro.storage.table") == []

    def test_over_description_warns(self):
        violations = analyze_source(
            """
from repro.common.epochs import PartitionDelta


class StoredTable:
    def touch(self, block_id, other_id):
        del self._block_rows[block_id]
        delta = PartitionDelta(blocks_changed={block_id, other_id})
        self.bump_epoch(delta)
""",
            module="repro.storage.table",
        )
        assert rules_of(violations) == {"delta-over-description"}
        assert violations[0].severity == "warning"
        assert "other_id" in violations[0].message

    def test_parameter_delta_is_the_callers_obligation(self):
        # A delta received as a parameter is described by the caller; the
        # callee must not be flagged for mutations the caller describes.
        assert (
            analyze_source(
                """
class StoredTable:
    def forget(self, tree_id, delta):
        del self.trees[tree_id]
        self.bump_epoch(delta)
""",
                module="repro.storage.table",
            )
            == []
        )

    def test_full_change_blankets_everything(self):
        assert (
            analyze_source(
                """
from repro.common.epochs import PartitionDelta


class StoredTable:
    def rebuild(self, block_id, tree_id):
        del self._block_rows[block_id]
        del self.trees[tree_id]
        self.bump_epoch(PartitionDelta.full_change())
""",
                module="repro.storage.table",
            )
            == []
        )

    def test_mutation_via_summarized_helper_fires(self):
        violations = analyze_source(
            """
from repro.common.epochs import PartitionDelta, mutates_partition_state


class StoredTable:
    @mutates_partition_state
    def _drop(self, tree_id):
        del self.trees[tree_id]

    def shrink(self, tree_id):
        delta = PartitionDelta()
        self.bump_epoch(delta)
        self._drop(tree_id)
""",
            module="repro.storage.table",
        )
        assert rules_of(violations) == {"delta-completeness"}
        assert "tree_id" in violations[0].message

    def test_loop_over_described_collection_is_quiet(self):
        assert (
            analyze_source(
                """
from repro.common.epochs import PartitionDelta


class StoredTable:
    def drop_many(self, doomed):
        delta = PartitionDelta(trees_dropped=doomed)
        self.bump_epoch(delta)
        for tree_id in doomed:
            del self.trees[tree_id]
""",
                module="repro.storage.table",
            )
            == []
        )


# --------------------------------------------------------------------- #
# shmem races
# --------------------------------------------------------------------- #
class TestShmemRaces:
    def test_worker_write_to_attached_view_fires(self):
        violations = analyze_source(
            """
def run_scan(view, payload):
    arr = view.columns["a"]
    arr[0] = 1.0
""",
            module="repro.exec.kernels_tasks",
        )
        assert rules_of(violations) == {"shmem-attached-write"}

    def test_copy_before_write_is_quiet(self):
        assert (
            analyze_source(
                """
import numpy as np


def run_scan(view, payload):
    arr = np.array(view.columns["a"])
    arr[0] = 1.0
""",
                module="repro.exec.kernels_tasks",
            )
            == []
        )

    def test_taint_flows_through_helper_calls(self):
        violations = analyze_source(
            """
def _helper(block):
    block[0] = 99


def run_scan(view, payload):
    _helper(view.columns["a"])
""",
            module="repro.exec.kernels_tasks",
        )
        assert rules_of(violations) == {"shmem-attached-write"}
        assert "_helper" in violations[0].message

    def test_inplace_ndarray_method_fires(self):
        violations = analyze_source(
            """
def run_scan(view, payload):
    view.columns["a"].sort()
""",
            module="repro.exec.kernels_tasks",
        )
        assert rules_of(violations) == {"shmem-attached-write"}

    def test_setflags_write_false_is_sanctioned(self):
        text_template = """
def run_scan(view, payload):
    view.columns["a"].setflags(write={value})
"""
        assert (
            analyze_source(
                text_template.format(value="False"),
                module="repro.exec.kernels_tasks",
            )
            == []
        )
        violations = analyze_source(
            text_template.format(value="True"),
            module="repro.exec.kernels_tasks",
        )
        assert rules_of(violations) == {"shmem-attached-write"}

    def test_parent_only_api_call_fires(self):
        violations = analyze_source(
            """
def run_scan(view, payload, store):
    store.pin_table(payload.table)
""",
            module="repro.exec.kernels_tasks",
        )
        assert rules_of(violations) == {"shmem-parent-state"}

    def test_parent_type_reference_fires(self):
        violations = analyze_source(
            """
def run_scan(view, payload):
    return WorkerPool
""",
            module="repro.exec.kernels_tasks",
        )
        assert rules_of(violations) == {"shmem-parent-state"}

    def test_non_worker_function_is_out_of_scope(self):
        # apply_* helpers run parent-side; the worker rules must not reach
        # functions unreachable from the worker roots.
        assert (
            analyze_source(
                """
def apply_results(table, results):
    table.pin_table("t")
""",
                module="repro.exec.kernels_tasks",
            )
            == []
        )

    def test_unfrozen_payload_class_fires(self):
        violations = analyze_source(
            """
from dataclasses import dataclass


@dataclass
class ScanPayload:
    task_id: int
""",
            module="repro.parallel.pool",
        )
        assert rules_of(violations) == {"shmem-payload-frozen"}
        assert (
            analyze_source(
                """
from dataclasses import dataclass


@dataclass(frozen=True)
class ScanPayload:
    task_id: int
""",
                module="repro.parallel.pool",
            )
            == []
        )


# --------------------------------------------------------------------- #
# catalog-transaction
# --------------------------------------------------------------------- #
class TestCatalogTransaction:
    def test_bare_write_execute_fires(self):
        violations = analyze_source(
            """
def save(conn):
    conn.execute("INSERT INTO meta VALUES (?, ?)", ("k", "v"))
""",
            module="repro.storage.persist.snippet",
        )
        assert rules_of(violations) == {"catalog-transaction"}

    def test_write_inside_transaction_block_is_quiet(self):
        assert (
            analyze_source(
                """
def save(catalog):
    with catalog.transaction() as cur:
        cur.execute("INSERT INTO meta VALUES (?, ?)", ("k", "v"))
        cur.executemany("DELETE FROM blocks WHERE block_id = ?", [(1,)])
""",
                module="repro.storage.persist.snippet",
            )
            == []
        )

    def test_literal_reads_and_pragmas_are_quiet(self):
        assert (
            analyze_source(
                """
def read(conn):
    conn.execute("PRAGMA journal_mode=WAL")
    return conn.execute("SELECT value FROM meta WHERE key = ?", ("k",)).fetchone()
""",
                module="repro.storage.persist.snippet",
            )
            == []
        )

    def test_transaction_machinery_statements_are_quiet(self):
        assert (
            analyze_source(
                """
def transaction(conn):
    conn.execute("BEGIN IMMEDIATE")
    conn.execute("COMMIT")
    conn.execute("ROLLBACK")
""",
                module="repro.storage.persist.snippet",
            )
            == []
        )

    def test_non_literal_sql_outside_transaction_fires(self):
        violations = analyze_source(
            """
def replay(conn, statements):
    for statement in statements:
        conn.execute(statement)
""",
            module="repro.storage.persist.snippet",
        )
        assert rules_of(violations) == {"catalog-transaction"}

    def test_non_literal_sql_inside_transaction_is_quiet(self):
        assert (
            analyze_source(
                """
def replay(catalog, statements):
    with catalog.transaction() as cur:
        for statement in statements:
            cur.execute(statement)
""",
                module="repro.storage.persist.snippet",
            )
            == []
        )

    def test_mutating_fstring_outside_transaction_fires(self):
        violations = analyze_source(
            """
def drop(conn, table):
    conn.execute(f"DELETE FROM {table}")
""",
            module="repro.storage.persist.snippet",
        )
        assert rules_of(violations) == {"catalog-transaction"}

    def test_rule_is_scoped_to_the_persist_package(self):
        assert (
            analyze_source(
                """
def save(conn):
    conn.execute("INSERT INTO t VALUES (1)")
""",
                module="repro.workloads.snippet",
            )
            == []
        )


# --------------------------------------------------------------------- #
# cross-file whole-program analysis
# --------------------------------------------------------------------- #
class TestCrossFileAnalysis:
    STORAGE = """
from repro.common.epochs import mutates_partition_state


class DistributedFileSystem:
    @mutates_partition_state
    def delete_block(self, block_id):
        self._blocks.pop(block_id, None)


class StoredTable:
    def bump_epoch(self, delta):
        self._epoch += 1

    def commit(self, delta):
        self.bump_epoch(delta)
        self._flush()
"""

    def _analyze_pair(self, caller_text):
        files = [
            SourceFile.from_text(
                self.STORAGE, path="table.py", module="repro.storage.table"
            ),
            SourceFile.from_text(
                caller_text, path="caller.py", module="repro.adaptive.caller"
            ),
        ]
        return analyze_files(files, ALL_CHECKERS)

    def test_mutator_followed_by_cross_file_proven_bump_is_quiet(self):
        violations = self._analyze_pair(
            """
def adapt(table, delta):
    table.delete_block(3)
    table.commit(delta)
"""
        )
        assert violations == []

    def test_mutator_without_bumping_call_fires(self):
        violations = self._analyze_pair(
            """
def adapt(table, delta):
    table.delete_block(3)
"""
        )
        assert rules_of(violations) == {"epoch-discipline"}


# --------------------------------------------------------------------- #
# suppressions
# --------------------------------------------------------------------- #
class TestSuppressions:
    def test_multi_rule_suppression(self):
        text = (
            "import time\n"
            "t = time.time()  "
            "# repro: allow[no-wall-clock, no-stdlib-random]\n"
        )
        assert analyze_source(text, module="repro.exec.snippet") == []

    def test_multi_rule_suppression_needs_the_right_id(self):
        text = (
            "import time\n"
            "t = time.time()  "
            "# repro: allow[no-stdlib-random, unseeded-rng]\n"
        )
        violations = analyze_source(text, module="repro.exec.snippet")
        assert rules_of(violations) == {"no-wall-clock"}

    def test_suppression_on_decorator_line_covers_it(self):
        text = """
import numpy as np


# repro: allow[no-global-numpy-rng, unseeded-rng]
@np.vectorize(np.random.default_rng())
def f(x):
    return x
"""
        assert analyze_source(text, module="repro.exec.snippet") == []


# --------------------------------------------------------------------- #
# report formats and the baseline
# --------------------------------------------------------------------- #
SARIF_SHAPE_SCHEMA = {
    "type": "object",
    "required": ["$schema", "version", "runs"],
    "properties": {
        "version": {"const": "2.1.0"},
        "runs": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["tool", "results"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name", "rules"],
                                "properties": {
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": ["id"],
                                        },
                                    }
                                },
                            }
                        },
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": [
                                "ruleId",
                                "level",
                                "message",
                                "locations",
                            ],
                            "properties": {
                                "level": {"enum": ["error", "warning"]},
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                },
                                "locations": {
                                    "type": "array",
                                    "minItems": 1,
                                    "items": {
                                        "type": "object",
                                        "required": ["physicalLocation"],
                                    },
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}


class TestReportFormats:
    def _violations(self):
        return analyze_source(
            "import random\n", module="repro.exec.snippet", path="x.py"
        )

    def test_json_golden(self):
        payload = violations_to_json(self._violations(), file_count=1)
        assert payload == {
            "files_analyzed": 1,
            "violations": [
                {
                    "rule": "no-stdlib-random",
                    "path": "x.py",
                    "line": 1,
                    "severity": "error",
                    "message": "stdlib random imported in a deterministic module",
                    "hint": "use repro.common.rng.make_rng instead",
                }
            ],
        }

    def test_sarif_validates_against_schema_shape(self):
        jsonschema = pytest.importorskip("jsonschema")

        log = violations_to_sarif(self._violations(), ALL_CHECKERS)
        jsonschema.validate(log, SARIF_SHAPE_SCHEMA)
        driver_rules = {
            rule["id"] for rule in log["runs"][0]["tool"]["driver"]["rules"]
        }
        for result in log["runs"][0]["results"]:
            assert result["ruleId"] in driver_rules

    def test_sarif_levels_follow_severity(self):
        violations = analyze_source(
            """
from repro.common.epochs import PartitionDelta


class StoredTable:
    def touch(self, block_id, other_id):
        del self._block_rows[block_id]
        delta = PartitionDelta(blocks_changed={block_id, other_id})
        self.bump_epoch(delta)
""",
            module="repro.storage.table",
        )
        log = violations_to_sarif(violations, ALL_CHECKERS)
        assert [r["level"] for r in log["runs"][0]["results"]] == ["warning"]

    def test_baseline_round_trip(self, tmp_path):
        violations = self._violations()
        baseline_path = tmp_path / "baseline.json"
        Baseline.from_violations(violations).write(baseline_path)
        loaded = Baseline.load(baseline_path)
        new, baselined = loaded.split(violations)
        assert new == [] and len(baselined) == 1
        other = analyze_source(
            "import random\n", module="repro.exec.other", path="y.py"
        )
        new, baselined = loaded.split(other)
        assert len(new) == 1 and baselined == []

    def test_rules_listing_covers_every_rule(self):
        listing = render_rules(ALL_CHECKERS)
        for rule in ALL_RULES:
            assert rule in listing

    def test_committed_baseline_matches_current_findings(self):
        # The committed baseline must stay exactly in sync with the tree:
        # no un-baselined finding (new violations must be fixed, not
        # accepted silently) and no stale acceptance (a fixed legacy
        # finding must leave the baseline).  The baseline stores
        # repo-relative paths — CI runs the CLI from the repo root.
        baseline = Baseline.load(REPO / "analysis_baseline.json")
        violations, _ = analyze_paths(
            [SRC, REPO / "tests", REPO / "benchmarks"]
        )
        current = {
            (v.rule, str(Path(v.path).relative_to(REPO)), v.message)
            for v in violations
        }
        new = current - baseline.entries
        stale = baseline.entries - current
        assert new == set(), f"un-baselined findings: {sorted(new)}"
        assert stale == set(), f"stale baseline entries: {sorted(stale)}"


class TestCLIFormats:
    def _run(self, tmp_path, *extra):
        # unseeded-rng fires regardless of module scope, so the fixture
        # file needs no repro package context.
        bad = tmp_path / "bad.py"
        bad.write_text(
            "import numpy as np\n\nrng = np.random.default_rng()\n",
            encoding="utf-8",
        )
        env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
        return subprocess.run(
            [sys.executable, "-m", "repro.analysis", str(bad), *extra],
            capture_output=True,
            text=True,
            env=env,
            cwd=tmp_path,
        )

    def test_sarif_output_file_and_timing_line(self, tmp_path):
        import json

        out = tmp_path / "analysis.sarif"
        proc = self._run(tmp_path, "--format", "sarif", "--out", str(out))
        assert proc.returncode == 1
        log = json.loads(out.read_text(encoding="utf-8"))
        assert log["version"] == "2.1.0"
        assert "repro.analysis:" in proc.stderr and "gating" in proc.stderr

    def test_baseline_downgrades_known_findings(self, tmp_path):
        write = self._run(
            tmp_path, "--write-baseline", str(tmp_path / "baseline.json")
        )
        assert write.returncode == 0
        gated = self._run(tmp_path)
        assert gated.returncode == 1
        accepted = self._run(
            tmp_path, "--baseline", str(tmp_path / "baseline.json")
        )
        assert accepted.returncode == 0, accepted.stdout + accepted.stderr

    def test_rules_listing_mode(self, tmp_path):
        proc = self._run(tmp_path, "--rules")
        assert proc.returncode == 0
        assert "delta-completeness" in proc.stdout
        assert "shmem-attached-write" in proc.stdout
