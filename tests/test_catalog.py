"""Tests for repro.storage.catalog."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.common.errors import StorageError
from repro.common.rng import make_rng
from repro.common.schema import DataType, Schema
from repro.partitioning.upfront import UpfrontPartitioner
from repro.storage.catalog import Catalog
from repro.storage.dfs import DistributedFileSystem
from repro.storage.table import ColumnTable, StoredTable


def make_stored(name: str) -> StoredTable:
    schema = Schema.of(("k", DataType.INT))
    table = ColumnTable(name, schema, {"k": np.arange(100)})
    dfs = DistributedFileSystem(cluster=Cluster(num_machines=2), rng=make_rng(0))
    tree = UpfrontPartitioner(["k"], 50).build(table.sample(), total_rows=100)
    return StoredTable.load(table, dfs, tree, rows_per_block=50)


class TestCatalog:
    def test_register_and_get(self):
        catalog = Catalog()
        table = make_stored("a")
        catalog.register(table)
        assert catalog.get("a") is table

    def test_duplicate_registration_rejected(self):
        catalog = Catalog()
        catalog.register(make_stored("a"))
        with pytest.raises(StorageError):
            catalog.register(make_stored("a"))

    def test_unknown_table_raises_with_known_names(self):
        catalog = Catalog()
        catalog.register(make_stored("a"))
        with pytest.raises(StorageError, match="unknown table"):
            catalog.get("zzz")

    def test_contains_and_len(self):
        catalog = Catalog()
        assert "a" not in catalog and len(catalog) == 0
        catalog.register(make_stored("a"))
        assert "a" in catalog and len(catalog) == 1

    def test_table_names_sorted(self):
        catalog = Catalog()
        for name in ("zeta", "alpha", "mid"):
            catalog.register(make_stored(name))
        assert catalog.table_names == ["alpha", "mid", "zeta"]

    def test_tables_follow_name_order(self):
        catalog = Catalog()
        for name in ("b", "a"):
            catalog.register(make_stored(name))
        assert [table.name for table in catalog.tables()] == ["a", "b"]
