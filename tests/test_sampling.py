"""Tests for repro.storage.sampling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import StorageError
from repro.common.rng import make_rng
from repro.storage.sampling import sample_columns


class TestSampleColumns:
    def test_small_table_returned_in_full(self):
        columns = {"a": np.arange(10)}
        sample = sample_columns(columns, sample_size=100)
        assert sample["a"].tolist() == list(range(10))

    def test_returned_copy_is_independent(self):
        columns = {"a": np.arange(10)}
        sample = sample_columns(columns, sample_size=100)
        sample["a"][0] = 999
        assert columns["a"][0] == 0

    def test_large_table_downsampled_to_requested_size(self):
        columns = {"a": np.arange(10_000)}
        sample = sample_columns(columns, sample_size=100)
        assert len(sample["a"]) == 100

    def test_deterministic_without_rng(self):
        columns = {"a": np.arange(10_000)}
        first = sample_columns(columns, sample_size=50)
        second = sample_columns(columns, sample_size=50)
        assert first["a"].tolist() == second["a"].tolist()

    def test_rng_sampling_preserves_row_alignment(self):
        columns = {"a": np.arange(1000), "b": np.arange(1000) * 2}
        sample = sample_columns(columns, sample_size=64, rng=make_rng(3))
        assert (sample["b"] == sample["a"] * 2).all()

    def test_sample_preserves_value_spread(self):
        columns = {"a": np.arange(100_000)}
        sample = sample_columns(columns, sample_size=1000, rng=make_rng(3))
        assert sample["a"].min() < 10_000
        assert sample["a"].max() > 90_000

    def test_empty_input(self):
        assert sample_columns({}, 10) == {}

    def test_ragged_columns_rejected(self):
        with pytest.raises(StorageError):
            sample_columns({"a": np.arange(5), "b": np.arange(6)}, 10)
