"""Tests for the workload pattern generators (switching / shifting / window)."""

from __future__ import annotations

import pytest

from repro.common.errors import WorkloadError
from repro.common.rng import make_rng
from repro.workloads.generators import (
    repeated_template_workload,
    shifting_workload,
    switching_workload,
    template_boundaries,
    window_sensitivity_workload,
)
from repro.workloads.tpch_queries import EVALUATED_TEMPLATES


class TestSwitchingWorkload:
    def test_paper_default_has_160_queries(self):
        queries = switching_workload(rng=make_rng(1))
        assert len(queries) == 20 * len(EVALUATED_TEMPLATES) == 160

    def test_templates_run_back_to_back(self):
        queries = switching_workload(["q12", "q14"], queries_per_template=5, rng=make_rng(1))
        assert [q.template for q in queries] == ["q12"] * 5 + ["q14"] * 5

    def test_invalid_count_rejected(self):
        with pytest.raises(WorkloadError):
            switching_workload(["q12"], queries_per_template=0)

    def test_parameters_vary_between_queries(self):
        queries = switching_workload(["q14"], queries_per_template=10, rng=make_rng(1))
        values = {q.predicates["lineitem"][0].value for q in queries}
        assert len(values) > 1

    def test_template_boundaries(self):
        assert template_boundaries(["a", "b", "c"], 20) == [20, 40]


class TestShiftingWorkload:
    def test_paper_default_has_140_queries(self):
        queries = shifting_workload(rng=make_rng(1))
        assert len(queries) == 20 * (len(EVALUATED_TEMPLATES) - 1) == 140

    def test_needs_two_templates(self):
        with pytest.raises(WorkloadError):
            shifting_workload(["q12"], rng=make_rng(1))

    def test_invalid_transition_length(self):
        with pytest.raises(WorkloadError):
            shifting_workload(["q12", "q14"], transition_length=0)

    def test_transition_is_gradual(self):
        queries = shifting_workload(["q12", "q14"], transition_length=40, rng=make_rng(2))
        first_half = sum(1 for q in queries[:20] if q.template == "q14")
        second_half = sum(1 for q in queries[20:] if q.template == "q14")
        assert second_half > first_half

    def test_only_adjacent_templates_appear_in_each_transition(self):
        queries = shifting_workload(["q12", "q14", "q19"], transition_length=10, rng=make_rng(2))
        assert {q.template for q in queries[:10]}.issubset({"q12", "q14"})
        assert {q.template for q in queries[10:]}.issubset({"q14", "q19"})

    def test_transition_ends_on_next_template(self):
        queries = shifting_workload(["q12", "q14"], transition_length=30, rng=make_rng(2))
        assert queries[-1].template in {"q12", "q14"}
        tail = [q.template for q in queries[-5:]]
        assert tail.count("q14") >= 3


class TestWindowSensitivityWorkload:
    def test_has_70_queries(self):
        assert len(window_sensitivity_workload(make_rng(1))) == 70

    def test_phase_structure(self):
        queries = window_sensitivity_workload(make_rng(1))
        assert all(q.template == "q14" for q in queries[:10])
        assert all(q.template == "q19" for q in queries[30:40])
        assert all(q.template == "q14" for q in queries[60:])

    def test_only_q14_and_q19_used(self):
        assert {q.template for q in window_sensitivity_workload(make_rng(1))} == {"q14", "q19"}


class TestRepeatedTemplateWorkload:
    def test_count_and_template(self):
        queries = repeated_template_workload("q19", 7, make_rng(1))
        assert len(queries) == 7
        assert all(q.template == "q19" for q in queries)
