"""Tests for repro.cluster (machines, cluster, cost model)."""

from __future__ import annotations

import pytest

from repro.cluster import Cluster, CostModel, Machine
from repro.common.errors import StorageError


class TestMachine:
    def test_local_read_accounting(self):
        machine = Machine(machine_id=0, memory_bytes=1024, stored_blocks={1, 2})
        assert machine.record_read(1) is True
        assert machine.record_read(5) is False
        assert (machine.local_reads, machine.remote_reads) == (1, 1)
        assert machine.locality_fraction == 0.5

    def test_locality_is_one_without_reads(self):
        assert Machine(0, 1024).locality_fraction == 1.0

    def test_reset_counters(self):
        machine = Machine(0, 1024, stored_blocks={1})
        machine.record_read(1)
        machine.reset_counters()
        assert machine.total_reads == 0


class TestCluster:
    def test_creates_requested_machines(self):
        cluster = Cluster(num_machines=4)
        assert len(cluster.machines) == 4
        assert cluster.machine(3).machine_id == 3

    def test_zero_machines_rejected(self):
        with pytest.raises(StorageError):
            Cluster(num_machines=0)

    def test_unknown_machine_rejected(self):
        with pytest.raises(StorageError):
            Cluster(num_machines=2).machine(5)

    def test_buffer_blocks_from_memory(self):
        cluster = Cluster(num_machines=2, machine_memory_bytes=1024)
        assert cluster.buffer_blocks(256) == 4
        assert cluster.buffer_blocks(4096) == 1  # never below one block

    def test_buffer_blocks_rejects_bad_block_size(self):
        with pytest.raises(StorageError):
            Cluster(num_machines=2).buffer_blocks(0)

    def test_parallelism_matches_cluster_size(self):
        cluster = Cluster(num_machines=7)
        assert cluster.cost_model.parallelism == 7

    def test_cluster_wide_locality(self):
        cluster = Cluster(num_machines=2)
        cluster.machine(0).stored_blocks.add(1)
        cluster.machine(0).record_read(1)
        cluster.machine(1).record_read(1)
        assert cluster.total_local_reads == 1
        assert cluster.total_remote_reads == 1
        assert cluster.locality_fraction == 0.5
        cluster.reset_read_counters()
        assert cluster.locality_fraction == 1.0


class TestCostModel:
    model = CostModel(parallelism=10)

    def test_shuffle_join_cost_uses_csj(self):
        assert self.model.shuffle_join_cost(10, 20) == pytest.approx(3.0 * 30)

    def test_hyper_join_cost(self):
        assert self.model.hyper_join_cost(10, 25) == pytest.approx(35.0)

    def test_co_partitioned_hyper_join_cheaper_than_shuffle(self):
        """With C_HyJ = 1 a hyper-join reads each block once vs CSJ times."""
        blocks = 50
        assert self.model.hyper_join_cost(blocks, blocks) < self.model.shuffle_join_cost(blocks, blocks)

    def test_scan_cost_full_locality(self):
        assert self.model.scan_cost(100, 1.0) == pytest.approx(100.0)

    def test_scan_cost_remote_penalty(self):
        cost = self.model.scan_cost(100, 0.0)
        assert cost == pytest.approx(108.0)

    def test_scan_cost_partial_locality_bounded(self):
        """Figure 7: even at 27% locality the slowdown is below ~8%."""
        slow = self.model.scan_cost(100, 0.27)
        fast = self.model.scan_cost(100, 1.0)
        assert 1.0 < slow / fast < 1.08

    def test_repartition_cost_charges_read_and_write(self):
        assert self.model.repartition_cost(10) == pytest.approx(25.0)

    def test_read_cost_mix(self):
        assert self.model.read_cost(10, 10) == pytest.approx(10 + 10.8)

    def test_to_seconds_divides_by_parallelism(self):
        assert self.model.to_seconds(100) == pytest.approx(10.0)

    def test_to_seconds_with_zero_parallelism_guard(self):
        model = CostModel(parallelism=0)
        assert model.to_seconds(10) == pytest.approx(10.0)
