"""Tests for repro.partitioning.two_phase (join levels + selection levels)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.common.errors import PartitioningError
from repro.partitioning.two_phase import TwoPhasePartitioner, default_join_levels
from repro.partitioning.tree import TreeNode


def make_sample(n: int = 4096):
    rng = np.random.default_rng(2)
    return {
        "join_key": rng.integers(0, 10_000, size=n).astype(float),
        "date": rng.integers(0, 2500, size=n).astype(float),
        "flag": rng.integers(0, 3, size=n).astype(float),
    }


class TestDefaultJoinLevels:
    def test_half_of_depth_by_default(self):
        assert default_join_levels(16) == 2
        assert default_join_levels(256) == 4

    def test_single_leaf_has_no_levels(self):
        assert default_join_levels(1) == 0

    def test_fraction_zero_and_one(self):
        assert default_join_levels(64, 0.0) == 0
        assert default_join_levels(64, 1.0) == 6


class TestTwoPhasePartitioner:
    def build(self, num_leaves=16, join_levels=None, fraction=0.5):
        partitioner = TwoPhasePartitioner(
            join_attribute="join_key",
            selection_attributes=["date", "flag"],
            join_level_fraction=fraction,
        )
        sample = make_sample()
        return partitioner.build(
            sample, total_rows=len(sample["join_key"]), num_leaves=num_leaves, join_levels=join_levels
        )

    def test_missing_join_attribute_rejected(self):
        partitioner = TwoPhasePartitioner("missing", ["date"])
        with pytest.raises(PartitioningError):
            partitioner.build(make_sample(), total_rows=100)

    def test_tree_records_join_metadata(self):
        tree = self.build(num_leaves=16)
        assert tree.join_attribute == "join_key"
        assert tree.join_levels == 2

    def test_top_levels_split_on_join_attribute(self):
        tree = self.build(num_leaves=16, join_levels=2)

        def attributes_at_depth(node: TreeNode, depth: int) -> set[str]:
            if node.is_leaf:
                return set()
            if depth == 0:
                return {node.attribute}
            return attributes_at_depth(node.left, depth - 1) | attributes_at_depth(
                node.right, depth - 1
            )

        assert attributes_at_depth(tree.root, 0) == {"join_key"}
        assert attributes_at_depth(tree.root, 1) == {"join_key"}
        assert "join_key" not in attributes_at_depth(tree.root, 2)

    def test_zero_join_levels_uses_only_selection_attributes(self):
        tree = self.build(num_leaves=8, join_levels=0)
        assert "join_key" not in tree.attribute_counts()

    def test_full_join_levels_uses_only_join_attribute(self):
        tree = self.build(num_leaves=8, join_levels=3)
        assert set(tree.attribute_counts()) == {"join_key"}

    def test_join_levels_clamped_to_depth(self):
        tree = self.build(num_leaves=4, join_levels=10)
        assert tree.join_levels <= math.ceil(math.log2(4))

    def test_leaf_count_from_rows_per_block(self):
        partitioner = TwoPhasePartitioner("join_key", ["date"], rows_per_block=512)
        sample = make_sample(4096)
        tree = partitioner.build(sample, total_rows=4096)
        assert tree.num_leaves == 8

    def test_median_splits_produce_disjoint_join_ranges(self):
        """Phase one must create disjoint, covering ranges on the join attribute."""
        sample = make_sample()
        tree = self.build(num_leaves=8, join_levels=3)
        tree.assign_block_ids(list(range(8)))
        bounds = tree.leaf_bounds("join_key")
        ordered = sorted(bounds.values())
        for (lo_a, hi_a), (lo_b, hi_b) in zip(ordered, ordered[1:]):
            assert hi_a <= lo_b or math.isclose(hi_a, lo_b)

    def test_join_partitions_are_balanced_under_skew(self):
        """Median-based splitting balances blocks even for skewed join keys."""
        rng = np.random.default_rng(3)
        sample = {
            "join_key": (rng.pareto(1.5, size=8192) * 100).astype(float),
            "date": rng.uniform(0, 100, size=8192),
        }
        partitioner = TwoPhasePartitioner("join_key", ["date"])
        tree = partitioner.build(sample, total_rows=8192, num_leaves=8, join_levels=3)
        counts = np.bincount(tree.route_rows(sample), minlength=8)
        assert counts.min() > 0
        assert counts.max() <= 3 * counts.min()

    def test_selection_attributes_missing_from_sample_are_ignored(self):
        partitioner = TwoPhasePartitioner("join_key", ["not_there", "date"])
        tree = partitioner.build(make_sample(), total_rows=1000, num_leaves=8, join_levels=1)
        assert "not_there" not in tree.attribute_counts()

    def test_tree_id_propagated(self):
        partitioner = TwoPhasePartitioner("join_key", ["date"])
        tree = partitioner.build(make_sample(), total_rows=100, num_leaves=2, tree_id=9)
        assert tree.tree_id == 9
