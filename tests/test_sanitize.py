"""Runtime sanitizer (REPRO_SANITIZE=1): dynamic twins of the static rules.

Each check is exercised positively (a seeded contract violation raises)
and negatively (the sanctioned behaviour stays quiet, and everything is a
no-op with the sanitizer off).  CI additionally runs the whole tier-1
suite once with the sanitizer enabled, so the production code paths are
exercised under enforcement too.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.common.epochs import PartitionDelta
from repro.common.rng import make_rng
from repro.common.sanitize import (
    SanitizeError,
    assert_no_shared_memory,
    assert_unaliased,
    sanitize_enabled,
    set_sanitize,
)
from repro.common.schema import DataType, Schema
from repro.partitioning.upfront import UpfrontPartitioner
from repro.storage.dfs import DistributedFileSystem
from repro.storage.shared_memory import BlockSpec, ColumnSpec, _views_of
from repro.storage.table import ColumnTable, StoredTable


@pytest.fixture
def sanitize():
    """Force the sanitizer on for one test, restoring env-var control after."""
    set_sanitize(True)
    yield
    set_sanitize(None)


def make_stored(rows: int = 400, rows_per_block: int = 64) -> StoredTable:
    rng = np.random.default_rng(3)
    schema = Schema.of(("key", DataType.INT), ("value", DataType.FLOAT))
    table = ColumnTable(
        "t",
        schema,
        {
            "key": rng.integers(0, 1_000, size=rows),
            "value": rng.uniform(0, 1, size=rows),
        },
    )
    tree = UpfrontPartitioner(["key"], rows_per_block).build(
        table.sample(rng=np.random.default_rng(4)), total_rows=rows
    )
    dfs = DistributedFileSystem(cluster=Cluster(num_machines=2), rng=make_rng(5))
    return StoredTable.load(table, dfs, tree, rows_per_block=rows_per_block)


class TestSwitch:
    def test_override_beats_env(self, sanitize):
        assert sanitize_enabled()
        set_sanitize(False)
        assert not sanitize_enabled()


class TestFrozenViews:
    def _spec_and_buffer(self) -> tuple[memoryview, BlockSpec]:
        array = np.arange(8, dtype=np.int64)
        buffer = memoryview(bytearray(array.tobytes()))
        spec = BlockSpec(
            block_id=0,
            num_rows=8,
            columns=(ColumnSpec("key", 0, array.dtype.str, 8),),
        )
        return buffer, spec

    def test_attached_views_are_readonly(self, sanitize):
        buffer, spec = self._spec_and_buffer()
        columns = _views_of(buffer, spec)
        with pytest.raises(ValueError):
            columns["key"][0] = 99

    def test_views_stay_writable_without_sanitizer(self):
        set_sanitize(False)
        try:
            buffer, spec = self._spec_and_buffer()
            columns = _views_of(buffer, spec)
            columns["key"][0] = 99
            assert columns["key"][0] == 99
        finally:
            set_sanitize(None)


class TestDeltaCrossCheck:
    def test_under_described_mutation_raises_at_next_bump(self, sanitize):
        stored = make_stored()
        block_id = stored.block_ids()[0]
        stored.bump_epoch(PartitionDelta())  # claims nothing will change
        # Seeded contract violation: partition state changes behind the
        # (empty) descriptor's back.
        # repro: allow[epoch-direct-write, delta-completeness]
        stored._block_rows[block_id] += 7
        with pytest.raises(SanitizeError, match="under-describes"):
            stored.bump_epoch(PartitionDelta())

    def test_described_mutation_is_quiet(self, sanitize):
        stored = make_stored()
        block_id = stored.block_ids()[0]
        delta = PartitionDelta(blocks_changed={block_id})
        stored.bump_epoch(delta)
        # repro: allow[epoch-direct-write]
        stored._block_rows[block_id] += 7
        stored.bump_epoch(PartitionDelta())

    def test_full_incoming_descriptor_blankets_prior_mutation(self, sanitize):
        # Full-change paths (load, replace_with_tree) legitimately mutate
        # just before their own bump; the blanket descriptor covers it.
        stored = make_stored()
        block_id = stored.block_ids()[0]
        stored.bump_epoch(PartitionDelta())
        # repro: allow[epoch-direct-write]
        stored._block_rows[block_id] += 7
        stored.bump_epoch(PartitionDelta.full_change())

    def test_real_mutation_paths_verify_clean(self, sanitize):
        stored = make_stored()
        tree = UpfrontPartitioner(["value"], stored.rows_per_block).build(
            stored.sample, total_rows=stored.total_rows
        )
        target = stored.add_empty_tree(tree)
        stored.move_blocks(stored.block_ids()[:2], target)
        stored.drop_empty_trees()
        stored.verify_pending_delta()

    def test_verify_is_noop_when_disabled(self):
        set_sanitize(False)
        try:
            stored = make_stored()
            block_id = stored.block_ids()[0]
            stored.bump_epoch(PartitionDelta())
            # repro: allow[epoch-direct-write, delta-completeness]
            stored._block_rows[block_id] += 7
            stored.bump_epoch(PartitionDelta())  # no snapshot, no check
        finally:
            set_sanitize(None)


class TestAliasingAsserts:
    def test_aliased_container_raises(self, sanitize):
        cached = {"t": [1, 2]}
        with pytest.raises(SanitizeError, match="aliases"):
            assert_unaliased(cached, cached, "plan")

    def test_aliased_inner_list_raises(self, sanitize):
        cached = {"t": [1, 2]}
        served = dict(cached)  # outer copied, inner shared
        with pytest.raises(SanitizeError, match="plan\\['t'\\]"):
            assert_unaliased(served, cached, "plan")

    def test_copied_containers_are_quiet(self, sanitize):
        cached = {"t": [1, 2]}
        served = {table: list(ids) for table, ids in cached.items()}
        assert_unaliased(served, cached, "plan")

    def test_shared_ndarray_storage_raises(self, sanitize):
        cached = np.zeros((3, 3), dtype=bool)
        with pytest.raises(SanitizeError, match="shares memory"):
            assert_no_shared_memory(cached[1:], cached, "overlap")
        assert_no_shared_memory(cached.copy(), cached, "overlap")
