"""Tests for the staged query-lifecycle API (repro.api).

Covers the session lifecycle (plan / lower / execute), the epoch-keyed plan
cache (hits on repeated templates, invalidation on exactly the mutated
tables, bit-identical cached results and explain text), partition-state
epochs on ``StoredTable``, the pluggable execution backends, and the
``AdaptDB`` compatibility shim.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import (
    PlanCache,
    SerialBackend,
    Session,
    TaskBackend,
    query_signature,
)
from repro.api.cache import CachedPlan
from repro.common.epochs import PartitionDelta
from repro.common.errors import PlanningError
from repro.common.predicates import between, ge
from repro.common.query import Query, join_query, scan_query
from repro.core import AdaptDB, AdaptDBConfig
from repro.experiments.harness import runtime_seconds
from repro.partitioning.two_phase import TwoPhasePartitioner
from repro.workloads.tpch_queries import tpch_query


def q12_like(low: float = 0.0, high: float = 400.0) -> Query:
    """A deterministic two-table join with a fixed-parameter predicate."""
    return join_query(
        "lineitem",
        "orders",
        "l_orderkey",
        "o_orderkey",
        predicates={"lineitem": [between("l_shipdate", low, high)]},
    )


@pytest.fixture
def session(small_config, tpch_tables):
    s = Session(config=small_config)
    for name in ("lineitem", "orders", "part"):
        s.load_table(tpch_tables[name])
    return s


class TestQuerySignature:
    def test_equal_queries_share_signature_despite_query_ids(self):
        assert query_signature(q12_like()) == query_signature(q12_like())

    def test_signature_ignores_predicate_order(self):
        predicates = [between("l_shipdate", 0, 10), ge("l_quantity", 5)]
        first = scan_query("lineitem", predicates)
        second = scan_query("lineitem", list(reversed(predicates)))
        assert query_signature(first) == query_signature(second)

    def test_signature_distinguishes_predicate_values(self):
        assert query_signature(q12_like(0, 10)) != query_signature(q12_like(0, 20))

    def test_signature_distinguishes_join_shape(self):
        plain = join_query("lineitem", "orders", "l_orderkey", "o_orderkey")
        assert query_signature(plain) != query_signature(q12_like())

    def test_signature_ignores_template_label(self):
        labelled = join_query(
            "lineitem", "orders", "l_orderkey", "o_orderkey", template="q12"
        )
        plain = join_query("lineitem", "orders", "l_orderkey", "o_orderkey")
        assert query_signature(labelled) == query_signature(plain)


class TestStoredTableEpochs:
    def test_load_establishes_epoch(self, session):
        assert session.table("lineitem").epoch == 1

    def test_add_empty_tree_bumps(self, session):
        table = session.table("lineitem")
        before = table.epoch
        tree = TwoPhasePartitioner("l_orderkey", ["l_shipdate"]).build(
            table.sample,
            total_rows=table.total_rows,
            num_leaves=max(2, table.total_rows // session.config.rows_per_block),
        )
        table.add_empty_tree(tree)
        assert table.epoch == before + 1

    def test_move_blocks_bumps_only_when_rows_move(self, session):
        table = session.table("lineitem")
        tree = TwoPhasePartitioner("l_orderkey", ["l_shipdate"]).build(
            table.sample,
            total_rows=table.total_rows,
            num_leaves=max(2, table.total_rows // session.config.rows_per_block),
        )
        target = table.add_empty_tree(tree)
        before = table.epoch
        table.move_blocks(table.block_ids(), target)
        assert table.epoch == before + 1
        # Every row now lives under the target tree: a second move is a no-op
        # and must not bump (no plan could be invalidated by it).
        after_move = table.epoch
        table.move_blocks(table.block_ids(), target)
        assert table.epoch == after_move

    def test_resplit_leaf_pair_bumps_unconditionally(self, session):
        table = session.table("lineitem")
        tree = table.trees[0]
        block_ids = tree.block_ids()
        before = table.epoch
        table.resplit_leaf_pair(block_ids[0], block_ids[1], "l_shipdate", 1e18)
        assert table.epoch == before + 1

    def test_replace_with_tree_bumps(self, session):
        table = session.table("part")
        tree = TwoPhasePartitioner("p_partkey", ["p_size"]).build(
            table.sample,
            total_rows=table.total_rows,
            num_leaves=max(2, table.total_rows // session.config.rows_per_block),
        )
        before = table.epoch
        table.replace_with_tree(tree)
        assert table.epoch > before

    def test_adaptive_query_bumps_joined_tables(self, session):
        before = {name: session.table(name).epoch for name in ("lineitem", "orders")}
        result = session.run(q12_like(), adapt=True)
        assert result.blocks_repartitioned > 0 or result.trees_created > 0
        after = {name: session.table(name).epoch for name in ("lineitem", "orders")}
        assert after != before


class TestPlanCache:
    def test_repeated_query_hits_cache(self, session):
        first = session.run(q12_like(), adapt=False)
        second = session.run(q12_like(), adapt=False)
        assert not first.plan_cache_hit
        assert second.plan_cache_hit
        assert session.plan_cache.hit_rate > 0

    def test_cached_and_cold_results_are_bit_identical(self, session):
        cold = session.run(q12_like(), adapt=False)
        cached = session.run(q12_like(), adapt=False)
        assert cached.plan_cache_hit
        assert cached.fingerprint() == cold.fingerprint()

    def test_cached_and_cold_explain_text_identical(self, session):
        cold_logical = session.plan(q12_like(), adapt=False)
        cold_physical = session.lower(cold_logical)
        cached_logical = session.plan(q12_like(), adapt=False)
        cached_physical = session.lower(cached_logical)
        assert cached_logical.from_cache and cached_physical.from_cache
        assert cached_logical.explain() == cold_logical.explain()
        assert cached_physical.explain() == cold_physical.explain()

    def test_mutation_invalidates_affected_tables_entries(self, session):
        session.run(q12_like(), adapt=False)
        assert session.run(q12_like(), adapt=False).plan_cache_hit
        # A real mutation through the adaptation path (tree creation + block
        # migration) bumps lineitem/orders epochs ...
        session.run(tpch_query("q12", session.rng), adapt=True)
        # ... so the cached plan for the old partition state must not serve.
        post_mutation = session.run(q12_like(), adapt=False)
        assert not post_mutation.plan_cache_hit

    def test_mutating_unrelated_table_keeps_entries_valid(self, session):
        session.run(q12_like(), adapt=False)
        # Partition-state change on part only.
        session.table("part").bump_epoch(PartitionDelta.full_change())
        assert session.run(q12_like(), adapt=False).plan_cache_hit

    def test_post_mutation_results_reflect_new_state(self, session, tpch_tables):
        """A post-mutation query is never served a stale plan."""
        from repro.testing import reference_join_count

        expected = reference_join_count(
            tpch_tables["lineitem"], tpch_tables["orders"], "l_orderkey", "o_orderkey"
        )
        query = join_query("lineitem", "orders", "l_orderkey", "o_orderkey")
        assert session.run(query, adapt=False).output_rows == expected
        # Adapt repeatedly (smooth migration rewrites blocks between trees).
        for _ in range(6):
            session.run(tpch_query("q12", session.rng), adapt=True)
        again = session.run(join_query("lineitem", "orders", "l_orderkey", "o_orderkey"),
                            adapt=False)
        assert again.output_rows == expected

    def test_steady_state_adaptive_workload_hits_cache(self, session):
        query = q12_like()
        results = [session.run(query, adapt=True) for _ in range(16)]
        tail = results[-3:]
        assert any(result.plan_cache_hit for result in tail)
        fingerprints = {result.fingerprint() for result in tail}
        assert len(fingerprints) == 1

    def test_cache_disabled_by_config(self, tpch_tables):
        config = AdaptDBConfig(rows_per_block=512, buffer_blocks=4, seed=3,
                               plan_cache_size=0)
        session = Session(config=config)
        for name in ("lineitem", "orders"):
            session.load_table(tpch_tables[name])
        first = session.run(q12_like(), adapt=False)
        second = session.run(q12_like(), adapt=False)
        assert not first.plan_cache_hit and not second.plan_cache_hit
        assert len(session.plan_cache) == 0

    def test_workload_identical_with_and_without_cache(self, tpch_tables):
        """The cache must never change results or adaptation decisions."""
        rng = np.random.default_rng(9)
        queries = [tpch_query("q12", rng) for _ in range(10)]

        def run_workload(plan_cache_size: int):
            config = AdaptDBConfig(rows_per_block=512, buffer_blocks=4, seed=11,
                                   plan_cache_size=plan_cache_size)
            session = Session(config=config)
            for name in ("lineitem", "orders"):
                session.load_table(tpch_tables[name])
            return [result.fingerprint() for result in session.run_workload(queries)]

        assert run_workload(64) == run_workload(0)

    def test_hyper_plan_cache_reused_across_different_predicates(self, session):
        """Same pruned block sets under different values reuse the hyper plan."""
        session.run(q12_like(0.0, 1e18), adapt=False)   # prunes nothing
        hits_before = session.optimizer.hyper_cache.hits
        session.run(q12_like(-1.0, 1e18), adapt=False)  # different signature,
        assert session.optimizer.hyper_cache.hits > hits_before  # same blocks

    def test_plan_cache_lru_bound(self):
        cache = PlanCache(capacity=2)
        entry = CachedPlan(scan_tables=[], scan_blocks={}, join_decisions=[])
        cache.put(("a",), entry)
        cache.put(("b",), entry)
        assert cache.get(("a",)) is entry  # refresh "a"
        cache.put(("c",), entry)           # evicts "b", the LRU entry
        assert cache.get(("b",)) is None
        assert cache.get(("a",)) is entry
        assert cache.get(("c",)) is entry
        assert len(cache) == 2


class TestBackends:
    def test_serial_and_task_backends_agree(self, session):
        query = q12_like()
        tasks_result = session.run(query, adapt=False)
        session.use_backend("serial")
        serial_result = session.run(query, adapt=False)
        assert serial_result.output_rows == tasks_result.output_rows
        assert serial_result.scan_output_rows == tasks_result.scan_output_rows
        assert serial_result.blocks_read == tasks_result.blocks_read
        assert serial_result.cost_units == pytest.approx(tasks_result.cost_units)
        assert serial_result.runtime_seconds == pytest.approx(tasks_result.runtime_seconds)

    def test_serial_backend_has_no_schedule_accounting(self, session):
        session.use_backend("serial")
        result = session.run(q12_like(), adapt=False)
        assert result.makespan_cost_units == 0.0
        assert result.tasks_scheduled == 0
        assert result.machine_cost_units == []

    def test_backend_selected_via_config(self, tpch_tables):
        config = AdaptDBConfig(rows_per_block=512, buffer_blocks=4, seed=3,
                               execution_backend="serial")
        session = Session(config=config)
        assert isinstance(session.backend, SerialBackend)

    def test_unknown_backend_rejected(self, session):
        with pytest.raises(PlanningError):
            session.use_backend("quantum")
        with pytest.raises(PlanningError):
            AdaptDBConfig(execution_backend="quantum")

    def test_custom_backend_instance_accepted(self, session):
        backend = TaskBackend(
            catalog=session.catalog, cluster=session.cluster, config=session.config,
            name="tasks2",
        )
        assert session.use_backend(backend) is backend
        assert session.backends["tasks2"] is backend

    def test_serial_sessions_skip_lowering(self, session):
        session.use_backend("serial")
        physical = session.lower(session.plan(q12_like(), adapt=False))
        assert physical.schedule_elided
        assert physical.compiled.tasks == []
        assert "elided" in physical.explain()

    def test_task_backend_recovers_from_elided_lowering(self, session):
        session.use_backend("serial")
        physical = session.lower(session.plan(q12_like(), adapt=False))
        session.use_backend("tasks")
        result = session.execute(physical)  # must compile for itself
        assert result.tasks_scheduled > 0
        assert result.output_rows == session.run(q12_like(), adapt=False).output_rows

    def test_mutating_a_served_plan_does_not_poison_the_cache(self, session):
        reference = session.run(q12_like(), adapt=False).fingerprint()
        tampered = session.plan(q12_like(), adapt=False)
        tampered.join_decisions.clear()
        tampered.scan_tables.append("part")
        tampered.scan_blocks["part"] = []
        assert session.run(q12_like(), adapt=False).fingerprint() == reference

    def test_multi_join_agreement(self, small_config, tpch_tables):
        session = Session(config=small_config)
        for name in ("lineitem", "orders", "customer"):
            session.load_table(tpch_tables[name])
        query = tpch_query("q3", session.rng)
        tasks_result = session.run(query, adapt=False)
        session.use_backend("serial")
        serial_result = session.run(query, adapt=False)
        assert serial_result.output_rows == tasks_result.output_rows
        assert serial_result.join_methods == tasks_result.join_methods
        assert serial_result.cost_units == pytest.approx(tasks_result.cost_units)


class TestReadStatScoping:
    def test_plan_does_not_reset_read_stats(self, session):
        session.run(q12_like(), adapt=False)
        reads_after_run = session.dfs.read_stats.total_reads
        assert reads_after_run > 0
        session.plan(q12_like(0, 50), adapt=False)
        session.lower(session.plan(q12_like(0, 60), adapt=False))
        assert session.dfs.read_stats.total_reads == reads_after_run

    def test_execute_scopes_stats_to_one_query(self, session):
        first = session.run(scan_query("part", [ge("p_size", 0)]), adapt=False)
        total_after_first = session.dfs.read_stats.total_reads
        session.run(scan_query("part", [ge("p_size", 0)]), adapt=False)
        # Identical query, identical placement: per-execution totals match.
        assert session.dfs.read_stats.total_reads == total_after_first
        assert first.blocks_read == total_after_first


class TestPlanningMetadata:
    def test_planning_seconds_recorded(self, session):
        result = session.run(q12_like(), adapt=False)
        assert result.planning_seconds > 0.0

    def test_logical_plan_records_epochs_and_signature(self, session):
        logical = session.plan(q12_like(), adapt=False)
        assert logical.signature == query_signature(q12_like())
        assert dict(logical.table_epochs) == {
            "lineitem": session.table("lineitem").epoch,
            "orders": session.table("orders").epoch,
        }

    def test_runtime_model_helper(self, session):
        result = session.run(q12_like(), adapt=False)
        assert runtime_seconds(result) == result.runtime_seconds
        assert runtime_seconds(result, "makespan") == result.makespan_seconds
        with pytest.raises(ValueError):
            runtime_seconds(result, "wishful")


class TestAdaptDBShim:
    def test_facade_delegates_to_session(self, small_config, tpch_tables):
        db = AdaptDB(small_config)
        assert isinstance(db.session, Session)
        db.load_table(tpch_tables["lineitem"])
        db.load_table(tpch_tables["orders"])
        assert db.catalog is db.session.catalog
        assert db.dfs is db.session.dfs
        assert db.optimizer is db.session.optimizer
        assert db.rng is db.session.rng
        result = db.run(q12_like(), adapt=False)
        assert result.output_rows > 0

    def test_facade_and_session_runs_are_identical(self, small_config, tpch_tables):
        db = AdaptDB(small_config)
        session = Session(config=small_config)
        for name in ("lineitem", "orders"):
            db.load_table(tpch_tables[name])
            session.load_table(tpch_tables[name])
        query = q12_like()
        assert db.run(query, adapt=False).fingerprint() == \
            session.run(query, adapt=False).fingerprint()

    def test_facade_accepts_existing_session(self, small_config, tpch_tables):
        session = Session(config=small_config)
        session.load_table(tpch_tables["lineitem"])
        db = AdaptDB(session=session)
        assert db.session is session
        assert db.config is session.config
        assert db.table("lineitem") is session.table("lineitem")
