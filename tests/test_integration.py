"""End-to-end integration tests: full workloads through the AdaptDB facade.

These tests exercise the complete stack (generator → upfront partitioning →
adaptive repartitioning → optimizer → executor) and check the two global
invariants that must hold no matter how the layout evolves:

1. query answers never change (they always match a reference computation on
   the raw data), and
2. no rows are ever lost or duplicated by block migrations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import AdaptDBRunner, FullScanBaseline
from repro.common.rng import make_rng
from repro.core import AdaptDB, AdaptDBConfig
from repro.workloads.cmt import CMTGenerator
from repro.workloads.generators import switching_workload
from repro.workloads.tpch import TPCHGenerator
from repro.workloads.tpch_queries import tpch_query

from repro.testing import reference_join_count


@pytest.fixture(scope="module")
def tpch_small():
    return TPCHGenerator(scale=0.08, seed=3).generate(["lineitem", "orders", "part", "customer"])


class TestTPCHWorkloadEndToEnd:
    def test_switching_workload_answers_match_reference(self, tpch_small):
        config = AdaptDBConfig(rows_per_block=512, buffer_blocks=4, seed=2)
        db = AdaptDB(config)
        for table in tpch_small.values():
            db.load_table(table)
        rng = make_rng(17)
        queries = switching_workload(["q12", "q14"], queries_per_template=6, rng=rng)
        for query in queries:
            result = db.run(query)
            clause = query.joins[0]
            expected = reference_join_count(
                tpch_small[clause.left_table],
                tpch_small[clause.right_table],
                clause.left_column,
                clause.right_column,
                query.predicates_on(clause.left_table),
                query.predicates_on(clause.right_table),
            )
            assert result.output_rows == expected

    def test_rows_never_lost_during_adaptation(self, tpch_small):
        config = AdaptDBConfig(rows_per_block=512, buffer_blocks=4, seed=2)
        db = AdaptDB(config)
        for table in tpch_small.values():
            db.load_table(table)
        expected_rows = {name: table.num_rows for name, table in tpch_small.items()}
        rng = make_rng(23)
        queries = switching_workload(["q12", "q14", "q3"], queries_per_template=5, rng=rng)
        for query in queries:
            db.run(query)
            for name, expected in expected_rows.items():
                assert db.table(name).total_rows == expected

    def test_key_multisets_preserved_after_full_workload(self, tpch_small):
        config = AdaptDBConfig(rows_per_block=512, buffer_blocks=4, seed=2)
        db = AdaptDB(config)
        db.load_table(tpch_small["lineitem"])
        db.load_table(tpch_small["orders"])
        original = np.sort(tpch_small["lineitem"].columns["l_orderkey"])
        rng = make_rng(29)
        for _ in range(12):
            db.run(tpch_query("q12", rng))
        stored = db.table("lineitem")
        keys = np.sort(
            np.concatenate(
                [stored.dfs.peek_block(b).column("l_orderkey") for b in stored.non_empty_block_ids()]
            )
        )
        assert np.array_equal(keys, original)

    def test_adaptdb_total_cost_beats_full_scan_on_a_real_workload(self, tpch_small):
        config = AdaptDBConfig(rows_per_block=512, buffer_blocks=4, seed=2)
        tables = [tpch_small[name] for name in ("lineitem", "orders", "part")]
        rng = make_rng(31)
        queries = switching_workload(["q12", "q14"], queries_per_template=8, rng=rng)
        adaptive = AdaptDBRunner(tables, config).run_workload(queries)
        full_scan = FullScanBaseline(tables, config).run_workload(queries)
        assert sum(r.cost_units for r in adaptive) < sum(r.cost_units for r in full_scan)


class TestCMTWorkloadEndToEnd:
    def test_trace_answers_match_reference(self):
        generator = CMTGenerator(scale=0.04, seed=11)
        tables = generator.generate()
        config = AdaptDBConfig(rows_per_block=512, buffer_blocks=4, seed=2)
        db = AdaptDB(config)
        for table in tables.values():
            db.load_table(table)
        for query in generator.query_trace(25):
            result = db.run(query)
            if not query.is_join_query:
                continue
            clause = query.joins[0]
            expected = reference_join_count(
                tables[clause.left_table],
                tables[clause.right_table],
                clause.left_column,
                clause.right_column,
                query.predicates_on(clause.left_table),
                query.predicates_on(clause.right_table),
            )
            assert result.output_rows == expected

    def test_adaptation_creates_trip_id_trees(self):
        generator = CMTGenerator(scale=0.04, seed=11)
        tables = generator.generate()
        db = AdaptDB(AdaptDBConfig(rows_per_block=512, buffer_blocks=4, seed=2))
        for table in tables.values():
            db.load_table(table)
        for query in generator.query_trace(25):
            db.run(query)
        assert db.table("trips").tree_for_join_attribute("trip_id") is not None
