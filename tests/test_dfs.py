"""Tests for repro.storage.dfs (the simulated distributed file system)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.common.errors import StorageError
from repro.common.rng import make_rng
from repro.storage.block import Block
from repro.storage.dfs import DistributedFileSystem


@pytest.fixture
def dfs():
    return DistributedFileSystem(cluster=Cluster(num_machines=4), replication=2, rng=make_rng(1))


def make_columns(start: int = 0):
    return {"key": np.arange(start, start + 10, dtype=np.int64)}


class TestBlockLifecycle:
    def test_allocate_ids_are_unique(self, dfs):
        assert dfs.allocate_block_id() != dfs.allocate_block_id()

    def test_create_block_places_replicas(self, dfs):
        block = dfs.create_block("t", make_columns())
        replicas = dfs.replicas_of(block.block_id)
        assert len(replicas) == 2
        assert len(set(replicas)) == 2
        for machine_id in replicas:
            assert dfs.cluster.machine(machine_id).holds(block.block_id)

    def test_replication_capped_by_cluster_size(self):
        dfs = DistributedFileSystem(cluster=Cluster(num_machines=2), replication=5, rng=make_rng(1))
        block = dfs.create_block("t", make_columns())
        assert len(dfs.replicas_of(block.block_id)) == 2

    def test_duplicate_block_id_rejected(self, dfs):
        block = dfs.create_block("t", make_columns())
        with pytest.raises(StorageError):
            dfs.put_block(Block(block.block_id, "t", make_columns()))

    def test_delete_block_removes_replicas(self, dfs):
        block = dfs.create_block("t", make_columns())
        replicas = dfs.replicas_of(block.block_id)
        dfs.delete_block(block.block_id)
        assert not dfs.has_block(block.block_id)
        for machine_id in replicas:
            assert not dfs.cluster.machine(machine_id).holds(block.block_id)

    def test_delete_unknown_block_raises(self, dfs):
        with pytest.raises(StorageError):
            dfs.delete_block(999)

    def test_num_blocks_and_table_listing(self, dfs):
        a = dfs.create_block("a", make_columns())
        b = dfs.create_block("b", make_columns())
        c = dfs.create_block("a", make_columns())
        assert dfs.num_blocks == 3
        assert dfs.blocks_of_table("a") == sorted([a.block_id, c.block_id])
        assert dfs.blocks_of_table("b") == [b.block_id]

    def test_total_bytes(self, dfs):
        dfs.create_block("a", make_columns())
        dfs.create_block("b", make_columns())
        assert dfs.total_bytes() == dfs.total_bytes("a") + dfs.total_bytes("b")
        assert dfs.total_bytes("a") == 80


class TestReads:
    def test_get_block_returns_stored_data(self, dfs):
        block = dfs.create_block("t", make_columns(5))
        fetched = dfs.get_block(block.block_id)
        assert fetched.column("key").tolist() == list(range(5, 15))

    def test_peek_does_not_count_reads(self, dfs):
        block = dfs.create_block("t", make_columns())
        dfs.peek_block(block.block_id)
        assert dfs.read_stats.total_reads == 0

    def test_get_counts_reads(self, dfs):
        block = dfs.create_block("t", make_columns())
        dfs.get_block(block.block_id)
        dfs.get_block(block.block_id)
        assert dfs.read_stats.total_reads == 2

    def test_locality_accounting_respects_placement(self, dfs):
        block = dfs.create_block("t", make_columns())
        holder = dfs.replicas_of(block.block_id)[0]
        other = next(m for m in range(4) if m not in dfs.replicas_of(block.block_id))
        dfs.get_block(block.block_id, reader_machine=holder)
        dfs.get_block(block.block_id, reader_machine=other)
        assert dfs.read_stats.local_reads == 1
        assert dfs.read_stats.remote_reads == 1
        assert dfs.read_stats.locality_fraction == 0.5

    def test_unknown_block_read_raises(self, dfs):
        with pytest.raises(StorageError):
            dfs.get_block(42)

    def test_reset_read_stats(self, dfs):
        block = dfs.create_block("t", make_columns())
        dfs.get_block(block.block_id)
        dfs.reset_read_stats()
        assert dfs.read_stats.total_reads == 0
        assert dfs.cluster.total_local_reads == 0

    def test_locality_fraction_defaults_to_one(self, dfs):
        assert dfs.read_stats.locality_fraction == 1.0
