"""Incremental storage statistics and chunked-block invariants.

Two families of properties introduced by the incremental-metadata work:

* the statistics caches on :class:`StoredTable` (per-block row counts,
  per-tree totals, non-empty sets, table total) must agree exactly with a
  brute-force recomputation over ``dfs.peek_block`` after *any* randomized
  sequence of mutations (``move_blocks``, ``replace_with_tree``,
  ``drop_empty_trees``, Amoeba re-splits), and
* chunked blocks must consolidate without observable change: row order,
  ranges and ``size_bytes`` are identical whether reads happen before,
  between or after appends.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.common.rng import make_rng
from repro.common.schema import DataType, Schema
from repro.partitioning.two_phase import TwoPhasePartitioner
from repro.partitioning.upfront import UpfrontPartitioner
from repro.storage.block import Block, compute_ranges
from repro.storage.dfs import DistributedFileSystem
from repro.storage.table import ColumnTable, StoredTable


def make_stored(rows: int = 1500, rows_per_block: int = 64, seed: int = 11) -> StoredTable:
    rng = np.random.default_rng(seed)
    schema = Schema.of(("key", DataType.INT), ("other", DataType.INT), ("value", DataType.FLOAT))
    table = ColumnTable(
        "t",
        schema,
        {
            "key": rng.integers(0, 5_000, size=rows),
            "other": rng.integers(0, 200, size=rows),
            "value": rng.uniform(0, 1, size=rows),
        },
    )
    tree = UpfrontPartitioner(["key", "other"], rows_per_block).build(
        table.sample(rng=np.random.default_rng(seed + 1)), total_rows=rows
    )
    dfs = DistributedFileSystem(cluster=Cluster(num_machines=4), rng=make_rng(seed + 2))
    return StoredTable.load(table, dfs, tree, rows_per_block=rows_per_block)


def brute_force_stats(stored: StoredTable) -> dict:
    """Recompute every cached statistic directly from the DFS blocks."""
    per_tree_rows = {
        tree_id: sum(
            stored.dfs.peek_block(b).num_rows for b in stored.block_ids(tree_id)
        )
        for tree_id in stored.trees
    }
    per_tree_non_empty = {
        tree_id: sorted(
            b for b in stored.block_ids(tree_id) if stored.dfs.peek_block(b).num_rows > 0
        )
        for tree_id in stored.trees
    }
    total = sum(per_tree_rows.values())
    fractions = (
        {tree_id: rows / total for tree_id, rows in per_tree_rows.items()}
        if total
        else {tree_id: 0.0 for tree_id in stored.trees}
    )
    return {
        "per_tree_rows": per_tree_rows,
        "per_tree_non_empty": per_tree_non_empty,
        "total": total,
        "fractions": fractions,
    }


def assert_stats_match(stored: StoredTable) -> None:
    expected = brute_force_stats(stored)
    stored.audit_cached_statistics()
    assert stored.total_rows == expected["total"]
    for tree_id in stored.trees:
        assert stored.rows_under_tree(tree_id) == expected["per_tree_rows"][tree_id]
        assert stored.non_empty_block_ids(tree_id) == expected["per_tree_non_empty"][tree_id]
    assert stored.non_empty_block_ids() == sorted(
        b for blocks in expected["per_tree_non_empty"].values() for b in blocks
    )
    assert stored.tree_row_fractions() == expected["fractions"]
    # Block ranges must equal an exact recomputation from the stored rows.
    for block_id in stored.block_ids():
        block = stored.dfs.peek_block(block_id)
        assert block.ranges == compute_ranges(block.columns), f"block {block_id}"


class TestCachedStatisticsProperty:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_randomized_mutation_sequences(self, seed):
        """Cached stats equal brute force after random storage mutations."""
        stored = make_stored(seed=20 + seed)
        rng = np.random.default_rng(100 + seed)
        spare_attributes = ["key", "other", "value"]

        for step in range(12):
            action = rng.integers(0, 4)
            if action == 0:
                # Create a new tree for a random attribute and migrate a
                # random subset of blocks into it.
                attribute = spare_attributes[int(rng.integers(0, 3))]
                tree = TwoPhasePartitioner(
                    attribute,
                    [a for a in spare_attributes if a != attribute],
                    rows_per_block=stored.rows_per_block,
                ).build(
                    stored.sample,
                    total_rows=max(stored.total_rows, 1),
                    num_leaves=max(2, stored.total_rows // stored.rows_per_block),
                )
                target = (
                    stored.tree_for_join_attribute(attribute)
                    or stored.add_empty_tree(tree)
                )
                candidates = stored.non_empty_block_ids()
                if candidates:
                    size = int(rng.integers(1, len(candidates) + 1))
                    picked = list(rng.choice(candidates, size=size, replace=False))
                    stored.move_blocks([int(b) for b in picked], target)
            elif action == 1:
                stored.drop_empty_trees()
            elif action == 2:
                replacement = UpfrontPartitioner(
                    ["other", "key"], stored.rows_per_block
                ).build(stored.sample, total_rows=max(stored.total_rows, 1))
                stored.replace_with_tree(replacement)
            else:
                # Amoeba-style re-split of a random bottom node.
                tree_id = list(stored.trees)[int(rng.integers(0, len(stored.trees)))]
                tree = stored.tree(tree_id)
                bottom = tree.bottom_internal_nodes()
                if bottom:
                    node, _ = bottom[int(rng.integers(0, len(bottom)))]
                    attribute = spare_attributes[int(rng.integers(0, 3))]
                    cutpoint = float(np.median(stored.sample[attribute]))
                    tree.resplit_node(node, attribute, cutpoint)
                    if node.left.block_id is not None and node.right.block_id is not None:
                        stored.resplit_leaf_pair(
                            node.left.block_id, node.right.block_id, attribute, cutpoint
                        )
            assert_stats_match(stored)

    def test_move_blocks_conserves_rows(self):
        stored = make_stored()
        before = stored.total_rows
        tree = TwoPhasePartitioner("other", ["key"], rows_per_block=64).build(
            stored.sample, total_rows=before, num_leaves=8
        )
        target = stored.add_empty_tree(tree)
        stats = stored.move_blocks(stored.block_ids(), target)
        assert stored.total_rows == before
        assert stats.rows_moved == before
        assert stored.rows_under_tree(target) == before
        assert_stats_match(stored)

    def test_lookup_excludes_empty_blocks_from_cache(self):
        stored = make_stored()
        tree = TwoPhasePartitioner("other", ["key"], rows_per_block=64).build(
            stored.sample, total_rows=stored.total_rows, num_leaves=8
        )
        target = stored.add_empty_tree(tree)
        source_tree = next(t for t in stored.trees if t != target)
        stored.move_blocks(stored.block_ids(source_tree), target)
        # The drained source tree's blocks are all empty: lookup must skip them.
        assert stored.lookup(tree_id=source_tree) == []
        assert set(stored.lookup()) == set(stored.non_empty_block_ids())


class TestChunkedBlockConsolidation:
    def make_block(self) -> Block:
        return Block(
            block_id=0,
            table="t",
            columns={
                "a": np.array([3, 1, 4], dtype=np.int64),
                "b": np.array([0.3, 0.1, 0.4]),
            },
        )

    def test_append_preserves_row_order_across_consolidation(self):
        block = self.make_block()
        block.append_rows({"a": np.array([1, 5], dtype=np.int64), "b": np.array([0.1, 0.5])})
        block.append_rows({"a": np.array([9], dtype=np.int64), "b": np.array([0.9])})
        assert block.num_pending_chunks == 2
        assert block.num_rows == 6  # O(1), before any consolidation
        assert block.columns["a"].tolist() == [3, 1, 4, 1, 5, 9]
        assert block.columns["b"].tolist() == [0.3, 0.1, 0.4, 0.1, 0.5, 0.9]
        assert block.num_pending_chunks == 0

    def test_incremental_ranges_equal_recomputation(self):
        block = self.make_block()
        rng = np.random.default_rng(7)
        for _ in range(5):
            n = int(rng.integers(1, 6))
            block.append_rows(
                {
                    "a": rng.integers(-100, 100, size=n),
                    "b": rng.uniform(-1, 2, size=n),
                }
            )
        expected = compute_ranges(block.columns)
        assert block.ranges == expected

    def test_size_bytes_incremental_then_exact(self):
        block = self.make_block()
        initial = block.size_bytes
        chunk = {"a": np.array([7, 8], dtype=np.int64), "b": np.array([0.7, 0.8])}
        block.append_rows(chunk)
        assert block.size_bytes == initial + 2 * 8 * 2
        _ = block.columns  # consolidate
        assert block.size_bytes == sum(a.nbytes for a in block.columns.values())

    def test_append_to_empty_block(self):
        block = Block(0, "t", {"a": np.empty(0, dtype=np.int64)})
        block.append_rows({"a": np.array([2, 1], dtype=np.int64)})
        assert block.num_rows == 2
        assert block.ranges == {"a": (1.0, 2.0)}
        assert block.columns["a"].tolist() == [2, 1]

    def test_clear_resets_all_metadata(self):
        block = self.make_block()
        block.append_rows({"a": np.array([9], dtype=np.int64), "b": np.array([0.9])})
        block.clear({"a": np.empty(0, dtype=np.int64), "b": np.empty(0)})
        assert block.num_rows == 0
        assert block.ranges == {}
        assert block.size_bytes == 0
        assert block.num_pending_chunks == 0

    def test_column_parts_stream_in_row_order(self):
        block = self.make_block()
        block.append_rows({"a": np.array([5], dtype=np.int64), "b": np.array([0.5])})
        parts = block.column_parts()
        assert [part["a"].tolist() for part in parts] == [[3, 1, 4], [5]]
        streamed = np.concatenate([part["a"] for part in parts])
        assert streamed.tolist() == block.columns["a"].tolist()

    def test_mismatched_append_columns_rejected(self):
        from repro.common.errors import StorageError

        block = self.make_block()
        with pytest.raises(StorageError):
            block.append_rows({"a": np.array([1], dtype=np.int64)})
