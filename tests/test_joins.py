"""Tests for the join executors: shuffle join and hyper-join."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.cluster import Cluster, CostModel
from repro.common.errors import PlanningError
from repro.common.predicates import between, le
from repro.common.rng import make_rng
from repro.common.schema import DataType, Schema
from repro.join.hyperjoin import execute_hyper_join, hyper_join, plan_hyper_join
from repro.join.shuffle import shuffle_join
from repro.partitioning.two_phase import TwoPhasePartitioner
from repro.partitioning.upfront import UpfrontPartitioner
from repro.storage.dfs import DistributedFileSystem
from repro.storage.table import ColumnTable, StoredTable

from repro.testing import reference_join_count


@pytest.fixture
def join_setup():
    """Two co-partitionable tables loaded into a shared DFS."""
    rng = np.random.default_rng(11)
    left_schema = Schema.of(("key", DataType.INT), ("attr", DataType.INT))
    right_schema = Schema.of(("rkey", DataType.INT), ("rattr", DataType.INT))
    left = ColumnTable(
        "left", left_schema,
        {"key": rng.integers(0, 500, size=3000), "attr": rng.integers(0, 100, size=3000)},
    )
    right = ColumnTable(
        "right", right_schema,
        {"rkey": rng.integers(0, 500, size=1200), "rattr": rng.integers(0, 100, size=1200)},
    )
    dfs = DistributedFileSystem(cluster=Cluster(num_machines=4), rng=make_rng(5))

    def load(table: ColumnTable, key: str, co_partitioned: bool) -> StoredTable:
        num_leaves = max(1, math.ceil(table.num_rows / 256))
        if co_partitioned:
            depth = max(1, math.ceil(math.log2(num_leaves)))
            tree = TwoPhasePartitioner(key, []).build(
                table.sample(), table.num_rows, num_leaves=num_leaves, join_levels=depth
            )
        else:
            tree = UpfrontPartitioner([key, table.schema.column_names[1]], 256).build(
                table.sample(), table.num_rows, num_leaves=num_leaves
            )
        return StoredTable.load(table, dfs, tree, rows_per_block=256)

    return {"dfs": dfs, "left": left, "right": right, "load": load}


class TestShuffleJoin:
    def test_output_matches_reference(self, join_setup):
        left = join_setup["load"](join_setup["left"], "key", False)
        right = join_setup["load"](join_setup["right"], "rkey", False)
        stats = shuffle_join(
            join_setup["dfs"], left.non_empty_block_ids(), right.non_empty_block_ids(),
            "key", "rkey",
        )
        expected = reference_join_count(join_setup["left"], join_setup["right"], "key", "rkey")
        assert stats.output_rows == expected

    def test_predicates_applied_before_join(self, join_setup):
        left = join_setup["load"](join_setup["left"], "key", False)
        right = join_setup["load"](join_setup["right"], "rkey", False)
        predicate = le("attr", 50)
        stats = shuffle_join(
            join_setup["dfs"], left.non_empty_block_ids(), right.non_empty_block_ids(),
            "key", "rkey", left_predicates=[predicate],
        )
        expected = reference_join_count(
            join_setup["left"], join_setup["right"], "key", "rkey", [predicate], None
        )
        assert stats.output_rows == expected

    def test_cost_follows_csj(self, join_setup):
        left = join_setup["load"](join_setup["left"], "key", False)
        right = join_setup["load"](join_setup["right"], "rkey", False)
        model = CostModel()
        stats = shuffle_join(
            join_setup["dfs"], left.non_empty_block_ids(), right.non_empty_block_ids(),
            "key", "rkey", cost_model=model,
        )
        assert stats.cost_units == pytest.approx(
            model.shuffle_join_cost(stats.build_blocks_read, stats.probe_blocks_read)
        )
        assert stats.shuffled_blocks == stats.total_blocks_read
        assert stats.method == "shuffle"

    def test_empty_blocks_are_not_counted(self, join_setup):
        left = join_setup["load"](join_setup["left"], "key", False)
        right = join_setup["load"](join_setup["right"], "rkey", False)
        stats = shuffle_join(
            join_setup["dfs"], left.block_ids(), right.block_ids(), "key", "rkey",
        )
        assert stats.build_blocks_read == len(left.non_empty_block_ids())


class TestHyperJoinPlanning:
    def test_plan_excludes_empty_blocks(self, join_setup):
        left = join_setup["load"](join_setup["left"], "key", True)
        right = join_setup["load"](join_setup["right"], "rkey", True)
        tree = TwoPhasePartitioner("key", []).build(left.sample, left.total_rows, num_leaves=2)
        left.add_empty_tree(tree)
        plan = plan_hyper_join(
            join_setup["dfs"], left.block_ids(), right.block_ids(), "key", "rkey", 4
        )
        assert len(plan.build_block_ids) == len(left.non_empty_block_ids())

    def test_invalid_buffer_rejected(self, join_setup):
        with pytest.raises(PlanningError):
            plan_hyper_join(join_setup["dfs"], [], [], "key", "rkey", 0)

    def test_co_partitioned_multiplicity_near_one(self, join_setup):
        left = join_setup["load"](join_setup["left"], "key", True)
        right = join_setup["load"](join_setup["right"], "rkey", True)
        plan = plan_hyper_join(
            join_setup["dfs"], left.non_empty_block_ids(), right.non_empty_block_ids(),
            "key", "rkey", 4,
        )
        assert plan.probe_multiplicity <= 2.0

    def test_unpartitioned_build_side_has_high_multiplicity(self, join_setup):
        left = join_setup["load"](join_setup["left"], "key", False)
        right = join_setup["load"](join_setup["right"], "rkey", True)
        plan = plan_hyper_join(
            join_setup["dfs"], left.non_empty_block_ids(), right.non_empty_block_ids(),
            "key", "rkey", 1,
        )
        assert plan.probe_multiplicity > 1.5


class TestHyperJoinExecution:
    def test_output_matches_reference_and_shuffle(self, join_setup):
        left = join_setup["load"](join_setup["left"], "key", True)
        right = join_setup["load"](join_setup["right"], "rkey", True)
        hyper = hyper_join(
            join_setup["dfs"], left.non_empty_block_ids(), right.non_empty_block_ids(),
            "key", "rkey", buffer_blocks=4,
        )
        shuffle = shuffle_join(
            join_setup["dfs"], left.non_empty_block_ids(), right.non_empty_block_ids(),
            "key", "rkey",
        )
        expected = reference_join_count(join_setup["left"], join_setup["right"], "key", "rkey")
        assert hyper.output_rows == expected == shuffle.output_rows

    def test_output_with_predicates(self, join_setup):
        left = join_setup["load"](join_setup["left"], "key", True)
        right = join_setup["load"](join_setup["right"], "rkey", True)
        left_predicate = between("attr", 10, 60)
        right_predicate = le("rattr", 80)
        stats = hyper_join(
            join_setup["dfs"], left.non_empty_block_ids(), right.non_empty_block_ids(),
            "key", "rkey", buffer_blocks=4,
            build_predicates=[left_predicate], probe_predicates=[right_predicate],
        )
        expected = reference_join_count(
            join_setup["left"], join_setup["right"], "key", "rkey",
            [left_predicate], [right_predicate],
        )
        assert stats.output_rows == expected

    def test_build_blocks_read_once(self, join_setup):
        left = join_setup["load"](join_setup["left"], "key", True)
        right = join_setup["load"](join_setup["right"], "rkey", True)
        stats = hyper_join(
            join_setup["dfs"], left.non_empty_block_ids(), right.non_empty_block_ids(),
            "key", "rkey", buffer_blocks=4,
        )
        assert stats.build_blocks_read == len(left.non_empty_block_ids())
        assert stats.method == "hyper"
        assert stats.shuffled_blocks == 0

    def test_probe_reads_match_plan_estimate(self, join_setup):
        left = join_setup["load"](join_setup["left"], "key", True)
        right = join_setup["load"](join_setup["right"], "rkey", True)
        plan = plan_hyper_join(
            join_setup["dfs"], left.non_empty_block_ids(), right.non_empty_block_ids(),
            "key", "rkey", 4,
        )
        stats = execute_hyper_join(join_setup["dfs"], plan, "key", "rkey")
        assert stats.probe_blocks_read == plan.estimated_probe_reads

    def test_cost_follows_equation_two(self, join_setup):
        left = join_setup["load"](join_setup["left"], "key", True)
        right = join_setup["load"](join_setup["right"], "rkey", True)
        model = CostModel()
        stats = hyper_join(
            join_setup["dfs"], left.non_empty_block_ids(), right.non_empty_block_ids(),
            "key", "rkey", buffer_blocks=4, cost_model=model,
        )
        assert stats.cost_units == pytest.approx(
            model.hyper_join_cost(stats.build_blocks_read, stats.probe_blocks_read)
        )

    def test_co_partitioned_hyper_join_cheaper_than_shuffle(self, join_setup):
        left = join_setup["load"](join_setup["left"], "key", True)
        right = join_setup["load"](join_setup["right"], "rkey", True)
        hyper = hyper_join(
            join_setup["dfs"], left.non_empty_block_ids(), right.non_empty_block_ids(),
            "key", "rkey", buffer_blocks=4,
        )
        shuffle = shuffle_join(
            join_setup["dfs"], left.non_empty_block_ids(), right.non_empty_block_ids(),
            "key", "rkey",
        )
        assert hyper.cost_units < shuffle.cost_units

    def test_bigger_buffer_never_costs_more(self, join_setup):
        left = join_setup["load"](join_setup["left"], "key", True)
        right = join_setup["load"](join_setup["right"], "rkey", True)
        costs = []
        for buffer_blocks in (1, 2, 4, 8):
            stats = hyper_join(
                join_setup["dfs"], left.non_empty_block_ids(), right.non_empty_block_ids(),
                "key", "rkey", buffer_blocks=buffer_blocks,
            )
            costs.append(stats.cost_units)
        assert all(later <= earlier for earlier, later in zip(costs, costs[1:]))
