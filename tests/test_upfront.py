"""Tests for repro.partitioning.upfront (the Amoeba upfront partitioner)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import PartitioningError
from repro.partitioning.upfront import UpfrontPartitioner, leaves_for_block_budget


class TestLeavesForBlockBudget:
    def test_exact_division(self):
        assert leaves_for_block_budget(1000, 100) == 10

    def test_rounds_up(self):
        assert leaves_for_block_budget(1001, 100) == 11

    def test_small_tables_get_single_block(self):
        assert leaves_for_block_budget(5, 100) == 1
        assert leaves_for_block_budget(0, 100) == 1

    def test_invalid_block_size(self):
        with pytest.raises(PartitioningError):
            leaves_for_block_budget(100, 0)


class TestUpfrontPartitioner:
    def make_sample(self, n: int = 2048):
        rng = np.random.default_rng(1)
        return {
            "a": rng.uniform(0, 1, size=n),
            "b": rng.integers(0, 100, size=n).astype(float),
            "c": rng.normal(0, 10, size=n),
            "d": rng.integers(0, 5, size=n).astype(float),
        }

    def test_requires_attributes(self):
        with pytest.raises(PartitioningError):
            UpfrontPartitioner(attributes=[]).build(self.make_sample(), total_rows=100)

    def test_number_of_leaves_matches_block_budget(self):
        partitioner = UpfrontPartitioner(attributes=["a", "b"], rows_per_block=256)
        tree = partitioner.build(self.make_sample(), total_rows=2048)
        assert tree.num_leaves == 8

    def test_explicit_leaf_override(self):
        partitioner = UpfrontPartitioner(attributes=["a", "b"])
        tree = partitioner.build(self.make_sample(), total_rows=2048, num_leaves=5)
        assert tree.num_leaves == 5

    def test_tree_has_no_join_attribute(self):
        tree = UpfrontPartitioner(["a"]).build(self.make_sample(), 100, num_leaves=2)
        assert tree.join_attribute is None
        assert tree.join_levels == 0

    def test_heterogeneous_branching_uses_many_attributes(self):
        """With 16 leaves and 4 attributes, every attribute should appear in the tree."""
        partitioner = UpfrontPartitioner(attributes=["a", "b", "c", "d"])
        tree = partitioner.build(self.make_sample(), total_rows=4096, num_leaves=16)
        counts = tree.attribute_counts()
        assert set(counts) == {"a", "b", "c", "d"}

    def test_attribute_usage_is_roughly_balanced(self):
        partitioner = UpfrontPartitioner(attributes=["a", "b", "c"])
        partitioner.build(self.make_sample(), total_rows=8192, num_leaves=32)
        usage = partitioner.attribute_usage
        assert max(usage.values()) - min(usage.values()) <= max(2, max(usage.values()) // 2)

    def test_attribute_usage_before_build(self):
        assert UpfrontPartitioner(["a", "b"]).attribute_usage == {"a": 0, "b": 0}

    def test_routing_spreads_rows(self):
        sample = self.make_sample()
        partitioner = UpfrontPartitioner(attributes=["a", "b", "c"])
        tree = partitioner.build(sample, total_rows=len(sample["a"]), num_leaves=8)
        counts = np.bincount(tree.route_rows(sample), minlength=8)
        assert counts.min() > 0

    def test_any_attribute_query_can_skip_blocks(self):
        """The Amoeba promise: a predicate on any partitioned attribute prunes some blocks."""
        from repro.common.predicates import le

        sample = self.make_sample()
        partitioner = UpfrontPartitioner(attributes=["a", "b", "c", "d"])
        tree = partitioner.build(sample, total_rows=len(sample["a"]), num_leaves=16)
        tree.assign_block_ids(list(range(16)))
        for attribute in ("a", "b", "c"):
            pruned = tree.lookup([le(attribute, float(np.quantile(sample[attribute], 0.05)))])
            assert len(pruned) < 16
