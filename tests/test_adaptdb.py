"""Integration tests for the AdaptDB facade."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import StorageError
from repro.common.query import join_query
from repro.core import AdaptDB, AdaptDBConfig
from repro.partitioning.two_phase import TwoPhasePartitioner
from repro.workloads.tpch_queries import tpch_query

from repro.testing import reference_join_count


class TestLoading:
    def test_load_registers_table(self, small_config, tpch_tables):
        db = AdaptDB(small_config)
        stored = db.load_table(tpch_tables["orders"])
        assert db.table("orders") is stored
        assert stored.total_rows == tpch_tables["orders"].num_rows

    def test_double_load_rejected(self, small_config, tpch_tables):
        db = AdaptDB(small_config)
        db.load_table(tpch_tables["orders"])
        with pytest.raises(StorageError):
            db.load_table(tpch_tables["orders"])

    def test_load_with_custom_tree(self, small_config, tpch_tables):
        db = AdaptDB(small_config)
        table = tpch_tables["orders"]
        tree = TwoPhasePartitioner("o_orderkey", ["o_orderdate"]).build(
            table.sample(), total_rows=table.num_rows, num_leaves=4
        )
        stored = db.load_table(table, tree=tree)
        assert stored.tree_for_join_attribute("o_orderkey") is not None

    def test_load_with_partition_attributes_subset(self, small_config, tpch_tables):
        db = AdaptDB(small_config)
        stored = db.load_table(
            tpch_tables["orders"], partition_attributes=["o_orderdate", "o_custkey"]
        )
        counts = stored.trees[0].attribute_counts()
        assert set(counts).issubset({"o_orderdate", "o_custkey"})

    def test_blocks_are_replicated_across_machines(self, small_config, tpch_tables):
        db = AdaptDB(small_config)
        stored = db.load_table(tpch_tables["orders"])
        for block_id in stored.block_ids():
            assert len(db.dfs.replicas_of(block_id)) == min(
                small_config.replication, small_config.num_machines
            )

    def test_describe_covers_all_tables(self, small_db):
        text = small_db.describe()
        for name in ("lineitem", "orders", "part"):
            assert name in text


class TestQueryExecution:
    def test_join_results_match_reference(self, small_db, tpch_tables):
        query = join_query("lineitem", "orders", "l_orderkey", "o_orderkey")
        result = small_db.run(query, adapt=False)
        expected = reference_join_count(
            tpch_tables["lineitem"], tpch_tables["orders"], "l_orderkey", "o_orderkey"
        )
        assert result.output_rows == expected

    def test_join_results_stable_under_adaptation(self, small_db, tpch_tables):
        """Adaptation must never change query answers, only their cost."""
        def query_template():
            return join_query("lineitem", "orders", "l_orderkey", "o_orderkey")

        expected = reference_join_count(
            tpch_tables["lineitem"], tpch_tables["orders"], "l_orderkey", "o_orderkey"
        )
        for _ in range(10):
            assert small_db.run(query_template()).output_rows == expected

    def test_run_workload_returns_one_result_per_query(self, small_db):
        rng = small_db.rng
        queries = [tpch_query("q12", rng) for _ in range(5)]
        results = small_db.run_workload(queries)
        assert len(results) == 5
        assert [r.query.query_id for r in results] == [q.query_id for q in queries]

    def test_determinism_across_instances(self, tpch_tables):
        """Two AdaptDB instances with the same seed produce identical cost series."""
        def run_once():
            config = AdaptDBConfig(rows_per_block=512, buffer_blocks=4, seed=99)
            db = AdaptDB(config)
            for name in ("lineitem", "orders"):
                db.load_table(tpch_tables[name])
            rng = np.random.default_rng(5)
            queries = [tpch_query("q12", rng) for _ in range(6)]
            return [round(r.cost_units, 6) for r in db.run_workload(queries)]

        assert run_once() == run_once()

    def test_adaptation_reduces_steady_state_cost(self, tpch_tables):
        config = AdaptDBConfig(rows_per_block=512, buffer_blocks=4, seed=11)
        adaptive = AdaptDB(config)
        static = AdaptDB(AdaptDBConfig(
            rows_per_block=512, buffer_blocks=4, seed=11,
            enable_smooth=False, enable_amoeba=False, force_join_method="shuffle",
        ))
        for name in ("lineitem", "orders"):
            adaptive.load_table(tpch_tables[name])
            static.load_table(tpch_tables[name])
        rng = np.random.default_rng(1)
        queries = [tpch_query("q12", rng) for _ in range(15)]
        adaptive_results = adaptive.run_workload(queries)
        static_results = static.run_workload(queries)
        adaptive_tail = sum(r.cost_units for r in adaptive_results[-5:])
        static_tail = sum(r.cost_units for r in static_results[-5:])
        assert adaptive_tail < static_tail

    def test_scan_only_template_q6(self, small_db, tpch_tables):
        query = tpch_query("q6", small_db.rng)
        result = small_db.run(query)
        assert result.join_methods == []
        assert result.blocks_read <= len(small_db.table("lineitem").non_empty_block_ids())
